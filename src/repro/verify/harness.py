"""The differential verification harness.

:class:`Verifier` fans N seeded scenarios through the batched
:class:`~repro.synth.flow_engine.FlowEngine` (reusing its dedup, caches and
process-pool runtime), runs the whole design flow under two partitioner
implementations (the exact ILP — or the multilevel pre-partitioner for the
opt-in ``huge`` family — plus the list scheduler) and a cache-warm re-run,
evaluates the
oracle suite on every scenario's artifacts, and records structured verdicts
— counterexample recipes included — to a JSONL :class:`VerdictStore`.

Failing scenarios are *shrunk*: the harness re-runs the failing oracles on
the same scenario with geometrically reduced node counts and reports the
smallest reproduction it finds, so a 14-task counterexample usually comes
back as a 2–4 task one.

Everything recorded is deterministic in ``(seed, scenarios, families,
blocks)``: wall times and cache provenance stay on the runtime report, never
in the store, so the same seed always reproduces a byte-identical verdict
file.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SpecificationError, WorkloadError
from ..runtime.engine import EngineConfig
from ..synth.flow_engine import FlowEngine, FlowJob, FlowReport
from .oracles import Oracle, OracleVerdict, ScenarioArtifacts, default_oracles
from .scenarios import ALL_FAMILIES, FAMILIES, Scenario, generate_scenarios
from .store import VerdictStore

#: Candidate task counts the shrinker tries, smallest first.
_SHRINK_LADDER: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12)


@dataclass
class VerifyConfig:
    """Configuration of one verification run.

    Parameters
    ----------
    scenarios:
        Number of seeded scenarios to generate and verify (>= 1).
    seed:
        Base seed of the scenario stream; the whole run — scenarios,
        verdicts, stored bytes — is a deterministic function of it.
    families:
        Scenario families to draw from (default: the five small families;
        the opt-in ``"huge"`` scale family must be asked for by name).
    workers:
        Worker processes for partition-stage cache misses (0 = in-process).
    blocks:
        Loop iterations the timing-model oracle compares analytic models and
        the event simulator at (odd by default so the final run is partial).
    store_path:
        Optional JSONL verdict-store path (``None`` keeps verdicts in
        memory).
    cache_dir:
        Optional shared cache root for the flow engines.  ``None`` (the
        default) uses a private temporary directory per run, so the
        warm-vs-cold oracle exercises the disk cache without polluting — or
        being polluted by — any ambient cache state.
    shrink:
        Whether to shrink failing scenarios to smaller node counts.
    max_shrink_rounds:
        Upper bound on shrink attempts per failing scenario.
    """

    scenarios: int = 50
    seed: int = 0
    families: Tuple[str, ...] = FAMILIES
    workers: int = 0
    blocks: int = 257
    store_path: Optional[Union[str, Path]] = None
    cache_dir: Optional[Union[str, Path]] = None
    shrink: bool = True
    max_shrink_rounds: int = 6

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise SpecificationError(
                f"--scenarios must be at least 1, got {self.scenarios}; a run "
                "that verifies nothing verifies nothing"
            )
        if self.workers < 0:
            raise SpecificationError("workers must be non-negative")
        if self.blocks < 1:
            raise SpecificationError("blocks must be at least 1")
        if self.max_shrink_rounds < 0:
            raise SpecificationError("max_shrink_rounds must be non-negative")
        self.families = tuple(self.families)
        if not self.families:
            raise SpecificationError("families must not be empty")
        for family in self.families:
            if family not in ALL_FAMILIES:
                raise WorkloadError(
                    f"unknown scenario family {family!r}; known: "
                    f"{', '.join(ALL_FAMILIES)}"
                )

    def meta_dict(self) -> Dict[str, object]:
        """The deterministic run parameters the store's meta line records."""
        return {
            "scenarios": self.scenarios,
            "seed": self.seed,
            "families": list(self.families),
            "blocks": self.blocks,
        }


@dataclass
class ScenarioVerdict:
    """Everything one verified scenario produced."""

    scenario: Scenario
    fingerprint: str
    verdicts: List[OracleVerdict]
    #: Shrink outcome for failing scenarios: the smallest scenario the
    #: failing oracles still fail on (``None`` when the scenario passed,
    #: shrinking is off, or no smaller reproduction was found).
    shrunk: Optional[Dict[str, object]] = None
    #: Runtime-only wall time of this scenario's oracle evaluation; never
    #: stored (same seed must produce byte-identical verdict files).
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether no oracle failed."""
        return not any(verdict.failed for verdict in self.verdicts)

    def failed_oracles(self) -> List[str]:
        """Names of the oracles that failed on this scenario."""
        return [verdict.oracle for verdict in self.verdicts if verdict.failed]

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (deterministic; excludes wall times)."""
        data: Dict[str, object] = {
            "kind": "scenario",
            "fingerprint": self.fingerprint,
            "scenario": self.scenario.to_json_dict(),
            "ok": self.ok,
            "verdicts": [verdict.to_json_dict() for verdict in self.verdicts],
        }
        if self.shrunk is not None:
            data["shrunk"] = self.shrunk
        return data

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular/JSON/CSV presentation."""
        statuses = {verdict.oracle: verdict.status for verdict in self.verdicts}
        row: Dict[str, object] = {
            "scenario": self.scenario.name,
            "family": self.scenario.family,
            "seed": self.scenario.seed,
            "tasks": self.scenario.task_count,
            "memory": self.scenario.memory_profile,
            "status": "ok" if self.ok else "FAIL",
        }
        row.update(statuses)
        row["failed_oracles"] = ",".join(self.failed_oracles())
        row["shrunk_tasks"] = (
            self.shrunk["scenario"]["task_count"] if self.shrunk else ""
        )
        return row


@dataclass
class VerifyReport:
    """Everything one :meth:`Verifier.run` call produced."""

    config: VerifyConfig
    records: List[ScenarioVerdict]
    wall_time: float = 0.0
    flow_wall_time: float = 0.0
    engine_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every scenario passed every oracle."""
        return all(record.ok for record in self.records)

    def failures(self) -> List[ScenarioVerdict]:
        """Scenarios on which at least one oracle failed."""
        return [record for record in self.records if not record.ok]

    @property
    def scenarios_per_second(self) -> float:
        """Verification throughput of this run."""
        if self.wall_time <= 0:
            return float("inf")
        return len(self.records) / self.wall_time

    def oracle_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-oracle pass/fail/skip tallies across the run."""
        counts: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            for verdict in record.verdicts:
                per = counts.setdefault(
                    verdict.oracle, {"pass": 0, "fail": 0, "skip": 0}
                )
                per[verdict.status] = per.get(verdict.status, 0) + 1
        return counts

    def rows(self) -> List[Dict[str, object]]:
        """Per-scenario rows for tabular/JSON/CSV output."""
        return [record.row() for record in self.records]

    def describe(self) -> str:
        """Multi-line human readable summary."""
        failures = self.failures()
        status = "all oracles passed" if self.ok else (
            f"{len(failures)} scenario(s) FAILED: "
            + ", ".join(record.scenario.name for record in failures)
        )
        lines = [
            f"verified {len(self.records)} scenario(s) in {self.wall_time:.2f} s "
            f"({self.scenarios_per_second:.1f} scenarios/s; seed "
            f"{self.config.seed}); {status}"
        ]
        for oracle, counts in sorted(self.oracle_counts().items()):
            lines.append(
                f"  {oracle:<16} {counts['pass']:>4} pass  "
                f"{counts['fail']:>3} fail  {counts['skip']:>3} skip"
            )
        return "\n".join(lines)


class Verifier:
    """Fans seeded scenarios through the flow engine and the oracle suite."""

    def __init__(
        self,
        config: Optional[VerifyConfig] = None,
        oracles: Optional[Sequence[Oracle]] = None,
        **overrides,
    ) -> None:
        if config is not None and overrides:
            raise SpecificationError(
                "pass either a VerifyConfig or keyword overrides, not both"
            )
        self.config = config or VerifyConfig(**overrides)
        self.oracles: Sequence[Oracle] = list(oracles or default_oracles())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> VerifyReport:
        """Verify the configured scenario stream and return the report."""
        start = time.perf_counter()
        config = self.config
        scenarios = generate_scenarios(
            config.scenarios, base_seed=config.seed, families=config.families
        )
        if config.cache_dir is not None:
            artifacts = self._run_scenarios(scenarios, Path(config.cache_dir))
        else:
            with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
                artifacts = self._run_scenarios(scenarios, Path(tmp))
        flow_wall, engine_stats, bundles = artifacts

        records: List[ScenarioVerdict] = []
        with VerdictStore(config.store_path, meta=config.meta_dict()) as store:
            for bundle in bundles:
                scenario_start = time.perf_counter()
                verdicts = [oracle.check(bundle) for oracle in self.oracles]
                record = ScenarioVerdict(
                    scenario=bundle.scenario,
                    fingerprint=bundle.scenario.fingerprint(),
                    verdicts=verdicts,
                    wall_time=time.perf_counter() - scenario_start,
                )
                if not record.ok and config.shrink:
                    record.shrunk = self._shrink(bundle.scenario, record)
                store.record(record)
                records.append(record)

        return VerifyReport(
            config=config,
            records=records,
            wall_time=time.perf_counter() - start,
            flow_wall_time=flow_wall,
            engine_stats=engine_stats,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _flow_jobs(self, scenarios: Sequence[Scenario]) -> List[FlowJob]:
        """Two jobs per scenario (primary + list baseline), in scenario order.

        The primary implementation is the exact ILP for every small family
        and the multilevel pre-partitioner for the ``huge`` family — the
        scenario itself decides (:meth:`Scenario.implementations`).
        """
        jobs: List[FlowJob] = []
        for scenario in scenarios:
            graph = scenario.build_graph()
            system = scenario.build_system()
            for partitioner in scenario.implementations():
                jobs.append(
                    FlowJob(
                        graph=graph,
                        system=system,
                        options=scenario.flow_options(partitioner),
                        tag=f"{scenario.name}@{partitioner}",
                        workload=f"verify_{scenario.family}",
                    )
                )
        return jobs

    def _run_scenarios(
        self, scenarios: Sequence[Scenario], cache_dir: Path
    ) -> Tuple[float, Dict[str, int], List[ScenarioArtifacts]]:
        """One cold batch, one warm batch, assembled into oracle bundles."""
        config = self.config
        start = time.perf_counter()
        jobs = self._flow_jobs(scenarios)
        cold_engine = FlowEngine(
            config=EngineConfig(workers=config.workers, cache_dir=cache_dir)
        )
        cold = cold_engine.run_batch(jobs)
        # The warm engine is a *fresh* process state sharing only the disk
        # caches the cold run populated — exactly the "new run, old cache"
        # situation the warm-vs-cold oracle is about.  Only the primary jobs
        # (every even index) are re-run: they are all the oracle consumes.
        warm_engine = FlowEngine(config=EngineConfig(workers=0, cache_dir=cache_dir))
        warm = warm_engine.run_batch(jobs[0::2])
        flow_wall = time.perf_counter() - start

        bundles: List[ScenarioArtifacts] = []
        for index, scenario in enumerate(scenarios):
            ilp_report: FlowReport = cold[2 * index]
            list_report: FlowReport = cold[2 * index + 1]
            bundles.append(
                ScenarioArtifacts(
                    scenario=scenario,
                    system=ilp_report.job.system,
                    graph=ilp_report.job.graph,
                    ilp_report=ilp_report,
                    list_report=list_report,
                    warm_ilp_report=warm[index],
                    blocks=config.blocks,
                    primary_partitioner=scenario.primary_partitioner,
                )
            )
        return flow_wall, cold_engine.stats.snapshot(), bundles

    def _shrink(
        self, scenario: Scenario, record: ScenarioVerdict
    ) -> Optional[Dict[str, object]]:
        """Smallest reduced-node-count scenario the failing oracles still fail.

        Candidates are tried smallest-first from a geometric ladder below the
        scenario's own task count; the first (hence smallest) reproduction
        wins.  Each candidate re-runs the full cold/warm flow pair in an
        isolated cache, so the shrunk verdict is as trustworthy as the
        original.
        """
        failing = set(record.failed_oracles())
        candidates = [
            count for count in _SHRINK_LADDER if count < scenario.task_count
        ][: self.config.max_shrink_rounds]
        for task_count in candidates:
            smaller = scenario.with_task_count(task_count)
            verdicts = self._verify_one(smaller)
            refailed = [
                verdict.oracle
                for verdict in verdicts
                if verdict.failed and verdict.oracle in failing
            ]
            if refailed:
                return {
                    "scenario": smaller.to_json_dict(),
                    "task_count": task_count,
                    "oracles": sorted(refailed),
                }
        return None

    def _verify_one(self, scenario: Scenario) -> List[OracleVerdict]:
        """Run the oracle suite on a single scenario in an isolated cache."""
        with tempfile.TemporaryDirectory(prefix="repro-verify-shrink-") as tmp:
            _, _, bundles = self._run_scenarios([scenario], Path(tmp))
        return [oracle.check(bundles[0]) for oracle in self.oracles]
