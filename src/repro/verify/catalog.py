"""Workload-registry entries for the verification scenario families.

Each scenario family registers as a ``verify_<family>`` workload, so the
seeded generators are first-class citizens of the catalog: ``repro
workloads list`` shows them, ``repro flow --workload verify_chain`` runs
one end-to-end, and the exploration subsystem can sweep them like any other
workload.  The ``seed`` sweep makes ``--variants`` expand each family into
a small deterministic population.
"""

from __future__ import annotations

from typing import Optional

from ..arch.catalog import generic_system
from ..synth.flow import FlowOptions
from ..taskgraph.graph import TaskGraph
from ..units import ms
from ..workloads.registry import register_workload
from .scenarios import _TASK_COUNT_RANGES, FAMILIES, HUGE_FAMILY, build_family_graph


def _verify_system():
    """A mid-sized board every family's default graphs fit comfortably."""
    return generic_system(
        clb_capacity=900, memory_words=8192, reconfiguration_time=ms(5)
    )


def _default_task_count(family: str) -> int:
    low, high = _TASK_COUNT_RANGES[family]
    return (low + high) // 2


def _family_builder(family: str):
    def build(seed: int = 0, task_count: Optional[int] = None) -> TaskGraph:
        count = task_count if task_count is not None else _default_task_count(family)
        return build_family_graph(family, seed, count)

    build.__name__ = f"build_verify_{family}"
    build.__doc__ = (
        f"The deterministic {family!r} verification-family graph for "
        "(seed, task_count)."
    )
    return build


_DESCRIPTIONS = {
    "layered": "seeded verification family: random layered DAGs (skewed costs)",
    "fanout": "seeded verification family: source -> N branches -> sink fanout",
    "chain": "seeded verification family: linear pipelines (longest critical paths)",
    "diamond": "seeded verification family: chained reconvergent diamond motifs",
    "degenerate": "seeded verification family: single-node/disconnected/no-edge graphs",
}

for _family in FAMILIES:
    register_workload(
        f"verify_{_family}",
        description=_DESCRIPTIONS[_family],
        default_params={"seed": 0, "task_count": _default_task_count(_family)},
        system=_verify_system,
        sweep={"seed": (0, 1, 2, 3)},
        tags=("verify", "synthetic", "seeded"),
    )(_family_builder(_family))


def _verify_huge_system():
    """A board sized so the default huge graphs split into a handful of
    partitions with comfortably loose memory."""
    return generic_system(
        clb_capacity=24_000, memory_words=1 << 17, reconfiguration_time=ms(5)
    )


def _verify_huge_options():
    return FlowOptions(partitioner="multilevel")


# The huge scale family rides the same builder machinery but carries the
# "huge" tag (excluded from every --workload all batch) and multilevel flow
# options: a flat exact solve at hundreds of tasks is intractable.
register_workload(
    f"verify_{HUGE_FAMILY}",
    description=(
        "seeded verification family: hundreds-of-tasks layered DAGs through "
        "the multilevel pre-partitioner (tag 'huge': excluded from "
        "--workload all)"
    ),
    default_params={"seed": 0, "task_count": _default_task_count(HUGE_FAMILY)},
    system=_verify_huge_system,
    flow_options=_verify_huge_options,
    sweep={"seed": (0, 1, 2, 3)},
    tags=("verify", "synthetic", "seeded", "huge"),
)(_family_builder(HUGE_FAMILY))
