"""Cross-implementation oracles for differential verification.

An *oracle* inspects the artifacts two (or more) independent implementations
produced for one scenario and checks an invariant the paper's claims rest
on.  Seven oracles ship with the library:

==================== =======================================================
``ilp-not-worse``     the ILP partitioner's objective is never beaten by the
                      list scheduler on any instance both solve (skipped
                      when the scenario's primary partitioner is a
                      heuristic, e.g. multilevel on the huge family — no
                      optimality claim exists to check)
``feasibility``       the two partitioners agree on feasibility — the list
                      scheduler never solves an instance the exact ILP calls
                      infeasible, and a list-infeasible instance is
                      ILP-infeasible too; a *heuristic* primary dead-ending
                      on a list-feasible instance is documented
                      incompleteness, not a failure
``timing-model``      the timing stage's spec matches a recomputation from
                      the partitioning, and the analytic FDH/IDH models
                      match the independent RTR event simulator within
                      floating-point tolerance
``warm-vs-cold``      a cache-served (warm) flow is bit-identical to the
                      cold flow that populated the cache — same design, or
                      the same structured failure
``memory-legality``   the memory map is legal: no boundary overflows the
                      board memory, every cross-partition edge is mapped
                      exactly once on each side, segments never overlap, and
                      the chosen ``k`` fits the worst per-iteration block
``partition-valid``   every produced partitioning passes the shared
                      validator (precedence, resources, memory, contiguous
                      indices)
``kpaths-vs-enum``    the nonenumerative k-longest-paths analysis reports
                      delays bit-identical to brute-force path enumeration
                      (top-1 cross-checked against the critical-path DP when
                      the graph has too many paths to enumerate)
==================== =======================================================

Each oracle returns an :class:`OracleVerdict` — ``pass``, ``fail`` or
``skip`` (the invariant's precondition did not hold, e.g. both partitioners
found the instance infeasible) plus JSON-able counterexample evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fission.strategies import SequencingStrategy, execution_time
from ..memmap.mapper import boundary_words_from_map
from ..memmap.segments import SegmentKind
from ..partition.spec import PartitionProblem
from ..partition.validate import validate_partitioning
from ..runtime.canonical import canonical_fingerprint
from ..simulate import RtrExecutionSimulator
from ..synth.flow_engine import FlowReport
from ..synth.rtr_design import RtrDesign
from ..synth.stages import run_timing
from ..taskgraph.analysis import (
    count_root_to_leaf_paths,
    critical_path,
    path_delay,
    root_to_leaf_paths,
)
from ..taskgraph.kpaths import k_longest_path_delays
from .scenarios import Scenario

#: Relative/absolute tolerances for cross-implementation float comparisons
#: (the simulator accumulates many small event durations, the analytic model
#: multiplies once — anything beyond this is a modelling bug, not rounding).
REL_TOL = 1e-6
ABS_TOL = 1e-9

PASS = "pass"
FAIL = "fail"
SKIP = "skip"


@dataclass
class OracleVerdict:
    """The outcome of one oracle on one scenario."""

    oracle: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the oracle found a violation."""
        return self.status == FAIL

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (canonically ordered for byte-stable stores)."""
        return {
            "oracle": self.oracle,
            "status": self.status,
            "detail": self.detail,
            "data": {key: self.data[key] for key in sorted(self.data)},
        }


@dataclass
class ScenarioArtifacts:
    """Everything the oracle suite inspects for one scenario.

    ``ilp_report`` / ``list_report`` are the cold flow-engine reports of the
    two partitioner implementations; ``warm_ilp_report`` is the same ILP job
    re-run through a fresh engine against the cache the cold run populated.
    ``blocks`` is the workload size timing comparisons are evaluated at.
    """

    scenario: Scenario
    system: object  # RtrSystem
    graph: object  # TaskGraph (as submitted)
    ilp_report: FlowReport
    list_report: FlowReport
    warm_ilp_report: Optional[FlowReport] = None
    blocks: int = 257
    #: The partitioner behind ``ilp_report`` — ``"ilp"`` for the small
    #: families, ``"multilevel"`` for the huge scale family.  Oracles whose
    #: invariant only holds for an exact primary consult this.
    primary_partitioner: str = "ilp"

    @property
    def primary_is_exact(self) -> bool:
        """Whether the primary implementation makes an optimality claim."""
        return self.primary_partitioner == "ilp"


def design_fingerprint(design: Optional[RtrDesign]) -> str:
    """A content hash of everything a design's consumers can observe.

    Floats are hex-encoded, so two designs fingerprint equal iff they are
    bit-identical — the equality the warm-vs-cold oracle demands.
    """
    if design is None:
        return ""
    partitioning = design.partitioning
    memory_map = design.memory_map
    spec = design.timing_spec
    payload = {
        "assignment": dict(partitioning.assignment),
        "partition_count": partitioning.partition_count,
        "delays": [float(d).hex() for d in partitioning.partition_delays],
        "reconfiguration_time": float(partitioning.reconfiguration_time).hex(),
        "k": design.computations_per_run,
        "blocks": {
            str(index): {
                "offsets": {
                    name: int(offset)
                    for name, offset in sorted(
                        memory_map.block(index).offsets.items()
                    )
                },
                "allocated": memory_map.block(index).allocated_words,
            }
            for index in memory_map.partition_indices
        },
        "timing": {
            "delays": [float(d).hex() for d in spec.partition_delays],
            "env_in": list(spec.partition_env_input_words),
            "env_out": list(spec.partition_env_output_words),
            "cross_in": list(spec.partition_cross_input_words),
            "cross_out": list(spec.partition_cross_output_words),
            "k": spec.computations_per_run,
        },
    }
    return canonical_fingerprint(payload)


def _failure_signature(report: FlowReport) -> Dict[str, object]:
    return {
        "failed_stage": report.failed_stage,
        "error_kind": report.error_kind,
        "error": report.error,
    }


class Oracle:
    """Base class: a named invariant check over :class:`ScenarioArtifacts`."""

    name = "oracle"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        raise NotImplementedError

    def _verdict(self, status: str, detail: str = "", **data) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, status=status, detail=detail, data=data)


class IlpNotWorseOracle(Oracle):
    """ILP objective <= list-scheduler objective on every instance both solve."""

    name = "ilp-not-worse"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        if not artifacts.primary_is_exact:
            return self._verdict(
                SKIP,
                f"primary partitioner {artifacts.primary_partitioner!r} is a "
                "heuristic; it makes no never-beaten optimality claim",
            )
        ilp, lst = artifacts.ilp_report, artifacts.list_report
        if not (ilp.ok and lst.ok):
            return self._verdict(SKIP, "both implementations must solve to compare")
        ilp_latency = ilp.design.partitioning.total_latency
        list_latency = lst.design.partitioning.total_latency
        if ilp_latency <= list_latency + max(ABS_TOL, REL_TOL * abs(list_latency)):
            return self._verdict(
                PASS,
                "ILP objective no worse than the list scheduler",
                ilp_latency=ilp_latency,
                list_latency=list_latency,
            )
        return self._verdict(
            FAIL,
            f"ILP latency {ilp_latency:.9g} s exceeds list latency "
            f"{list_latency:.9g} s — the optimal partitioner was beaten by "
            "the heuristic",
            ilp_latency=ilp_latency,
            list_latency=list_latency,
            ilp_assignment=dict(ilp.design.partitioning.assignment),
            list_assignment=dict(lst.design.partitioning.assignment),
        )


def infeasibility_certificate(graph, system) -> str:
    """A cheap *proof* that no partitioning of *graph* on *system* exists.

    Returns a human-readable certificate (empty string = no proof found).
    The only sound cheap certificate is a single task exceeding the device:
    aggregate memory/resource pressure can always in principle be resolved
    by a different assignment, so it proves nothing on its own.
    """
    capacity = system.resource_capacity
    for task in graph.tasks():
        if not task.resources.fits_within(capacity):
            return (
                f"task {task.name!r} needs {task.resources.as_dict()} which "
                f"exceeds the device capacity {capacity.as_dict()}"
            )
    return ""


class FeasibilityOracle(Oracle):
    """The partitioners agree on feasibility at the partition stage.

    Two sound directions are enforced:

    * **list-feasible => ILP-feasible** — the exact solver can never call an
      instance infeasible when the heuristic exhibits a solution;
    * **certified-infeasible => ILP-infeasible** — when the instance carries
      a cheap infeasibility proof (a task larger than the device), the ILP
      must not "solve" it.

    A list failure *without* a certificate on an instance the ILP solves is
    recorded as a pass with full evidence: the list scheduler's conservative
    memory admission (unplaced consumers are assumed to cross every later
    boundary) makes it deliberately incomplete, so such dead-ends are a
    documented property of the baseline, not a disagreement between correct
    implementations.  Symmetrically, when the scenario's *primary*
    partitioner is itself a heuristic (multilevel on the huge family), its
    dead-ends on list-feasible instances are recorded as passes with
    evidence — only an exact primary promises completeness.
    """

    name = "feasibility"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        ilp, lst = artifacts.ilp_report, artifacts.list_report
        ilp_infeasible = (not ilp.ok) and ilp.failed_stage == "partition"
        list_infeasible = (not lst.ok) and lst.failed_stage == "partition"
        if ilp.ok and lst.ok:
            return self._verdict(PASS, "both partitioners solved the instance")
        if ilp_infeasible and list_infeasible:
            return self._verdict(
                PASS,
                "both partitioners report the instance infeasible",
                ilp_error=ilp.error,
                list_error=lst.error,
            )
        if lst.ok and ilp_infeasible:
            if not artifacts.primary_is_exact:
                # A heuristic primary (multilevel on the huge family) is
                # incomplete by design: its coarsening can paint itself into
                # a corner the list scheduler happens to avoid.  Record the
                # dead-end with evidence; only an *exact* primary missing a
                # feasible instance is a soundness violation.
                return self._verdict(
                    PASS,
                    f"the heuristic primary ({artifacts.primary_partitioner}) "
                    "dead-ended on an instance the list scheduler solved",
                    primary_error=ilp.error,
                    list_partitions=lst.design.partition_count,
                )
            return self._verdict(
                FAIL,
                "the list scheduler found a feasible partitioning but the "
                "exact ILP reports the instance infeasible",
                ilp_error=ilp.error,
                list_assignment=dict(lst.design.partitioning.assignment),
            )
        if ilp.ok and list_infeasible:
            certificate = infeasibility_certificate(
                ilp.design.partitioning.graph, artifacts.system
            )
            if certificate:
                return self._verdict(
                    FAIL,
                    "the ILP claims to have solved a provably infeasible "
                    f"instance ({certificate}) that the list scheduler "
                    "correctly rejected",
                    certificate=certificate,
                    ilp_assignment=dict(ilp.design.partitioning.assignment),
                )
            return self._verdict(
                PASS,
                "list scheduler dead-ended on a feasible instance (its "
                "conservative memory admission is incomplete by design); "
                "the exact ILP solved it",
                list_error=lst.error,
                ilp_partitions=ilp.design.partition_count,
            )
        # One or both flows failed past the partition stage (e.g. fission on
        # a tight memory) — feasibility itself was not contradicted.
        return self._verdict(
            SKIP,
            "a flow failed outside the partition stage",
            ilp=_failure_signature(ilp),
            list=_failure_signature(lst),
        )


class TimingModelOracle(Oracle):
    """Timing stage == recomputation, and analytic models == event simulator."""

    name = "timing-model"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        report = artifacts.ilp_report
        if not report.ok:
            return self._verdict(SKIP, "no finished design to time")
        design = report.design
        recomputed = run_timing(design.partitioning, design.fission, design.memory_map)
        stored = design.timing_spec
        if recomputed != stored:
            return self._verdict(
                FAIL,
                "the design's timing spec differs from a recomputation from "
                "its own partitioning/fission/memory map",
                stored_delays=[float(d).hex() for d in stored.partition_delays],
                recomputed_delays=[
                    float(d).hex() for d in recomputed.partition_delays
                ],
                stored_k=stored.computations_per_run,
                recomputed_k=recomputed.computations_per_run,
            )
        simulator = RtrExecutionSimulator(artifacts.system, check_memory=False)
        comparisons: Dict[str, object] = {}
        for strategy in (SequencingStrategy.FDH, SequencingStrategy.IDH):
            analytic = execution_time(
                strategy, stored, artifacts.blocks, artifacts.system
            ).total
            simulated = simulator.simulate(stored, strategy, artifacts.blocks).total_time
            comparisons[strategy.value] = {
                "analytic_s": analytic,
                "simulated_s": simulated,
            }
            if not math.isclose(simulated, analytic, rel_tol=REL_TOL, abs_tol=ABS_TOL):
                return self._verdict(
                    FAIL,
                    f"{strategy.value.upper()} analytic latency {analytic:.12g} s "
                    f"disagrees with the event simulator's {simulated:.12g} s "
                    f"at {artifacts.blocks} computations",
                    strategy=strategy.value,
                    blocks=artifacts.blocks,
                    **comparisons,
                )
        return self._verdict(
            PASS,
            "timing stage matches the RTR event simulator for FDH and IDH",
            blocks=artifacts.blocks,
            **comparisons,
        )


class WarmColdOracle(Oracle):
    """A cache-served flow must be bit-identical to the cold flow."""

    name = "warm-vs-cold"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        cold, warm = artifacts.ilp_report, artifacts.warm_ilp_report
        if warm is None:
            return self._verdict(SKIP, "no warm re-run was performed")
        if cold.ok != warm.ok:
            return self._verdict(
                FAIL,
                "cold and warm flows disagree on success",
                cold=_failure_signature(cold),
                warm=_failure_signature(warm),
            )
        if not cold.ok:
            if _failure_signature(cold) == _failure_signature(warm):
                return self._verdict(
                    PASS,
                    "cold and warm flows fail identically",
                    failure=_failure_signature(cold),
                )
            return self._verdict(
                FAIL,
                "cold and warm flows fail differently",
                cold=_failure_signature(cold),
                warm=_failure_signature(warm),
            )
        cold_print = design_fingerprint(cold.design)
        warm_print = design_fingerprint(warm.design)
        if cold_print == warm_print:
            return self._verdict(
                PASS,
                "warm (cache-served) design is bit-identical to the cold one",
                fingerprint=cold_print,
            )
        return self._verdict(
            FAIL,
            "warm (cache-served) design differs from the cold one",
            cold_fingerprint=cold_print,
            warm_fingerprint=warm_print,
            cold_partitions=cold.design.partition_count,
            warm_partitions=warm.design.partition_count,
            cold_k=cold.design.computations_per_run,
            warm_k=warm.design.computations_per_run,
        )


class MemoryLegalityOracle(Oracle):
    """The memory map is legal: bounded, complete and non-overlapping."""

    name = "memory-legality"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        report = artifacts.ilp_report
        if not report.ok:
            return self._verdict(SKIP, "no finished design to check")
        design = report.design
        partitioning = design.partitioning
        memory_map = design.memory_map
        capacity = artifacts.system.memory_capacity_words
        violations: List[str] = []

        for boundary in range(1, partitioning.partition_count):
            words = partitioning.boundary_words(boundary)
            if words > capacity:
                violations.append(
                    f"boundary {boundary} stores {words} words, exceeding the "
                    f"{capacity}-word board memory"
                )
            mapped = boundary_words_from_map(memory_map, boundary)
            if mapped != words:
                violations.append(
                    f"boundary {boundary}: memory map carries {mapped} live "
                    f"words but the partitioning says {words}"
                )

        # Every cross-partition edge must be mapped on both sides.
        graph = partitioning.graph
        for producer, consumer in graph.edges():
            source = partitioning.partition_of(producer)
            target = partitioning.partition_of(consumer)
            if source == target or graph.edge_words(producer, consumer) == 0:
                continue
            segment = f"flow:{producer}->{consumer}"
            out_names = {
                s.name
                for s in memory_map.block(source).segments_of_kind(
                    SegmentKind.CROSS_OUTPUT
                )
            }
            in_names = {
                s.name
                for s in memory_map.block(target).segments_of_kind(
                    SegmentKind.CROSS_INPUT
                )
            }
            if segment not in out_names:
                violations.append(
                    f"edge {producer!r}->{consumer!r} has no CROSS_OUTPUT "
                    f"segment in partition {source}"
                )
            if segment not in in_names:
                violations.append(
                    f"edge {producer!r}->{consumer!r} has no CROSS_INPUT "
                    f"segment in partition {target}"
                )

        # Segments inside each block must not overlap, and the chosen k must
        # keep the worst per-iteration block within the board memory.
        for index in memory_map.partition_indices:
            block = memory_map.block(index)
            intervals = sorted(
                (block.offset_of(segment.name),
                 block.offset_of(segment.name) + segment.words)
                for segment in block.segments
            )
            for (_, first_end), (second_start, _) in zip(intervals, intervals[1:]):
                if second_start < first_end:
                    violations.append(
                        f"partition {index}: overlapping memory segments"
                    )
                    break
        k = design.computations_per_run
        worst = memory_map.max_per_iteration_words()
        if worst and k * worst > capacity:
            violations.append(
                f"k={k} iterations of the worst {worst}-word block need "
                f"{k * worst} words, exceeding the {capacity}-word memory"
            )

        if violations:
            return self._verdict(
                FAIL,
                "; ".join(violations),
                violations=violations,
                k=k,
                capacity=capacity,
            )
        return self._verdict(
            PASS,
            "memory map is legal (bounded boundaries, every edge mapped, "
            "disjoint segments, k within memory)",
            k=k,
            capacity=capacity,
        )


class PartitionValidityOracle(Oracle):
    """Every produced partitioning passes the shared constraint validator."""

    name = "partition-valid"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        checked = 0
        for label, report in (("ilp", artifacts.ilp_report),
                              ("list", artifacts.list_report)):
            if not report.ok:
                continue
            checked += 1
            partitioning = report.design.partitioning
            problem = PartitionProblem.from_system(
                partitioning.graph, artifacts.system
            )
            validation = validate_partitioning(problem, partitioning)
            if not validation.is_valid:
                return self._verdict(
                    FAIL,
                    f"the {label} partitioning violates the problem "
                    "constraints: " + "; ".join(validation.violations),
                    implementation=label,
                    violations=list(validation.violations),
                    assignment=dict(partitioning.assignment),
                )
        if not checked:
            return self._verdict(SKIP, "no finished partitioning to validate")
        return self._verdict(
            PASS, f"{checked} partitioning(s) satisfy every problem constraint"
        )


#: Path-count budget above which the kpaths oracle stops enumerating and
#: falls back to the top-1 critical-path cross-check.
KPATHS_ENUM_LIMIT = 2000


class KPathsOracle(Oracle):
    """Nonenumerative k-longest-paths delays == brute-force enumeration.

    The delay analysis (:mod:`repro.taskgraph.kpaths`) promises delays
    *bit-identical* to summing each enumerated path root-first — that
    equality is what lets the ILP's Eq. 7 path generation switch to the
    nonenumerative algorithm without perturbing any solve.  This oracle
    checks it differentially on the scenario's own graph:

    * when the graph's path count is within :data:`KPATHS_ENUM_LIMIT`, every
      enumerated ``path_delay`` must appear, bitwise, in the nonenumerative
      top-``count`` output (full multiset equality);
    * on larger graphs (the huge family) enumeration is the very thing the
      algorithm exists to avoid, so only the top-1 delay is cross-checked —
      against the independent critical-path DP, which folds delays in the
      same root-first order.
    """

    name = "kpaths-vs-enum"

    def check(self, artifacts: ScenarioArtifacts) -> OracleVerdict:
        graph = artifacts.graph
        top1 = k_longest_path_delays(graph, 1)[0]
        _, cp_delay = critical_path(graph)
        if top1 != cp_delay:
            return self._verdict(
                FAIL,
                "the nonenumerative top-1 path delay differs from the "
                "critical-path DP",
                kpaths_top1=float(top1).hex(),
                critical_path=float(cp_delay).hex(),
            )
        count = count_root_to_leaf_paths(graph)
        if count > KPATHS_ENUM_LIMIT:
            return self._verdict(
                PASS,
                f"{count} root-to-leaf paths exceed the {KPATHS_ENUM_LIMIT}-"
                "path enumeration budget; top-1 verified against the "
                "critical-path DP",
                path_count=count,
            )
        enumerated = sorted(
            (path_delay(graph, path) for path in root_to_leaf_paths(graph)),
            reverse=True,
        )
        nonenumerative = k_longest_path_delays(graph, count)
        if [float(d).hex() for d in enumerated] != [
            float(d).hex() for d in nonenumerative
        ]:
            mismatch = next(
                index
                for index, (a, b) in enumerate(zip(enumerated, nonenumerative))
                if float(a).hex() != float(b).hex()
            )
            return self._verdict(
                FAIL,
                f"nonenumerative path delays diverge from enumeration at "
                f"rank {mismatch} of {count}",
                rank=mismatch,
                enumerated=float(enumerated[mismatch]).hex(),
                nonenumerative=float(nonenumerative[mismatch]).hex(),
                path_count=count,
            )
        return self._verdict(
            PASS,
            f"all {count} path delays bit-identical between enumeration and "
            "the nonenumerative analysis",
            path_count=count,
        )


def default_oracles() -> List[Oracle]:
    """The full oracle suite, in report order."""
    return [
        IlpNotWorseOracle(),
        FeasibilityOracle(),
        TimingModelOracle(),
        WarmColdOracle(),
        MemoryLegalityOracle(),
        PartitionValidityOracle(),
        KPathsOracle(),
    ]


def run_oracles(
    artifacts: ScenarioArtifacts, oracles: Optional[Sequence[Oracle]] = None
) -> List[OracleVerdict]:
    """Run every oracle on *artifacts*, in order."""
    return [oracle.check(artifacts) for oracle in (oracles or default_oracles())]
