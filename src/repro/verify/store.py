"""The JSONL verdict store the verification harness writes.

Like the exploration :class:`~repro.explore.store.RunStore`, a
:class:`VerdictStore` is an append-only JSONL file: one meta line (schema
version plus the run's configuration) followed by one line per verified
scenario.  Records carry only deterministic fields (scenario recipe, oracle
verdicts, shrink outcome — never wall times or cache provenance), so the
same seed and scenario count always reproduce a byte-identical file; that
byte-identity is itself asserted by the test suite.

``path=None`` gives the same interface backed by memory only.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Union

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness uses us)
    from .harness import ScenarioVerdict

logger = logging.getLogger(__name__)

#: Schema version of the JSONL records; a store written under a different
#: version is refused rather than silently reinterpreted.
STORE_VERSION = 1


class VerdictStore:
    """Append-only JSONL store of per-scenario verification verdicts."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.meta: Dict[str, object] = dict(meta or {})
        self._records: List["ScenarioVerdict"] = []
        self._handle = None
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._write_line({"kind": "meta", "version": STORE_VERSION, **self.meta})

    def _write_line(self, data: Dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(data, sort_keys=True, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def record(self, verdict: "ScenarioVerdict") -> None:
        """Append one scenario's verdict."""
        self._records.append(verdict)
        if self._handle is not None:
            self._write_line(verdict.to_json_dict())

    def replay(self) -> List["ScenarioVerdict"]:
        """Every record, in insertion order."""
        return list(self._records)

    def close(self) -> None:
        """Close the underlying file (records stay readable in memory)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._records)


def read_verdicts(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Iterate the JSON records of a stored verdict file (meta first).

    Raises :class:`~repro.errors.ReproError` on an unreadable file or a
    schema-version mismatch; corrupt individual lines raise too — a verdict
    store is evidence, so silent healing would be the wrong default.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ReproError(f"cannot read verdict store {path}: {error}") from error
    for number, line in enumerate(raw.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError as error:
            raise ReproError(
                f"corrupt verdict store {path} at line {number}: {error}"
            ) from error
        if data.get("kind") == "meta" and data.get("version") != STORE_VERSION:
            raise ReproError(
                f"verdict store {path} was written under schema version "
                f"{data.get('version')}, this library expects {STORE_VERSION}"
            )
        yield data
