"""Linear constraints for the ILP modelling layer."""

from __future__ import annotations

from enum import Enum
from typing import Mapping, Union

from ..errors import ModelError
from .expr import LinExpr, Number, Variable


class Sense(str, Enum):
    """Comparison sense of a constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr (<=|>=|==) bound``.

    Internally normalised to ``lhs sense rhs`` where ``lhs`` is a
    :class:`LinExpr` with zero constant and ``rhs`` is a number, which is the
    shape all three solver backends consume.
    """

    __slots__ = ("lhs", "sense", "rhs", "name")

    def __init__(self, lhs: LinExpr, sense: Sense, rhs: float, name: str = "") -> None:
        constant = lhs.constant
        self.lhs = LinExpr(dict(lhs.terms), 0.0)
        self.sense = sense
        self.rhs = float(rhs) - constant
        self.name = name

    @staticmethod
    def from_sides(
        left: Union[LinExpr, Variable, Number],
        right: Union[LinExpr, Variable, Number],
        sense: Sense,
    ) -> "Constraint":
        """Build a constraint from two expression-like sides."""
        difference = LinExpr.from_value(left) - LinExpr.from_value(right)
        return Constraint(difference, sense, 0.0)

    def named(self, name: str) -> "Constraint":
        """A copy of this constraint with a human-readable name attached."""
        clone = Constraint(self.lhs.copy(), self.sense, self.rhs, name=name)
        return clone

    def variables(self):
        """Variables appearing in the constraint."""
        return self.lhs.variables()

    def is_satisfied(
        self, assignment: Mapping[Variable, float], tolerance: float = 1e-6
    ) -> bool:
        """Whether the constraint holds under *assignment* (within tolerance)."""
        value = self.lhs.value(assignment)
        if self.sense is Sense.LE:
            return value <= self.rhs + tolerance
        if self.sense is Sense.GE:
            return value >= self.rhs - tolerance
        return abs(value - self.rhs) <= tolerance

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Non-negative amount by which the constraint is violated."""
        value = self.lhs.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - value)
        return abs(value - self.rhs)

    def as_le_pair(self):
        """This constraint as a list of equivalent ``<=`` constraints.

        ``>=`` is negated; ``==`` becomes a ``<=`` / ``>=`` pair.  Used by the
        simplex backend, which standardises on ``<=`` rows plus equalities.
        """
        if self.sense is Sense.LE:
            return [self]
        if self.sense is Sense.GE:
            return [Constraint(self.lhs * -1.0, Sense.LE, -self.rhs, name=self.name)]
        return [
            Constraint(self.lhs.copy(), Sense.LE, self.rhs, name=self.name),
            Constraint(self.lhs * -1.0, Sense.LE, -self.rhs, name=self.name),
        ]

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.lhs!r} {self.sense.value} {self.rhs:g}{label})"


def ensure_constraint(value) -> Constraint:
    """Validate that *value* is a :class:`Constraint` (guards common mistakes).

    A frequent modelling bug is writing ``model.add_constraint(x + y)`` and
    forgetting the comparison; this helper turns that into a clear error.
    """
    if not isinstance(value, Constraint):
        raise ModelError(
            f"expected a Constraint (did you forget '<=', '>=' or '=='?), got {value!r}"
        )
    return value
