"""Linearisation helpers for products of 0-1 variables.

The paper's memory constraint uses the non-linear terms
``w_p,t1,t2 >= y_t1,p1 * y_t2,p2`` (Eqs. 4-5) and notes that "linearization
techniques can be used to transform the non-linear equations into linear
ones".  This module provides the two standard techniques:

* :func:`product_linearization` — the exact three-constraint encoding of
  ``z = x * y`` for binary ``x``, ``y``;
* :func:`indicator_ge_sum` — the aggregated one-constraint lower bound
  ``z >= sum(xs) + sum(ys) - 1`` which is exact when each sum is itself known
  to be at most one (as is the case under the partitioning model's uniqueness
  constraint).  The temporal-partitioning formulation uses this form because
  it produces one constraint per (edge, boundary) instead of ``O(N^2)``.

An ablation benchmark checks that both encodings give identical optima on the
case-study model.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ModelError
from .constraint import Constraint
from .expr import LinExpr, Variable, linear_sum
from .model import Model


def product_linearization(
    model: Model, product: Variable, x: Variable, y: Variable, name_prefix: str = ""
) -> List[Constraint]:
    """Add the exact linearisation of ``product = x * y`` for binary x, y.

    The three constraints are::

        product <= x
        product <= y
        product >= x + y - 1

    *product* must already exist in *model* as a binary (or [0,1]-bounded)
    variable.  Returns the constraints that were added.
    """
    for variable in (product, x, y):
        if not (0.0 <= variable.lower and variable.upper <= 1.0):
            raise ModelError(
                f"product linearisation requires [0,1] variables, got "
                f"{variable.name!r} with bounds [{variable.lower}, {variable.upper}]"
            )
    prefix = name_prefix or f"lin_{product.name}"
    constraints = [
        model.add_constraint(product <= x, name=f"{prefix}_le_x"),
        model.add_constraint(product <= y, name=f"{prefix}_le_y"),
        model.add_constraint(product >= x + y - 1, name=f"{prefix}_ge_sum"),
    ]
    return constraints


def indicator_ge_sum(
    model: Model,
    indicator: Variable,
    left_group: Sequence[Variable],
    right_group: Sequence[Variable],
    name: str = "",
) -> Constraint:
    """Add ``indicator >= sum(left_group) + sum(right_group) - 1``.

    This is the aggregated lower bound used by the partitioning formulation:
    when at most one variable of each group can be 1 (uniqueness constraint),
    the right-hand side is 1 exactly when both groups have their variable set,
    so the constraint forces the indicator in exactly the case Eqs. 4-5 cover.
    """
    if not left_group or not right_group:
        raise ModelError("indicator_ge_sum requires two non-empty variable groups")
    expr: LinExpr = linear_sum(left_group) + linear_sum(right_group) - 1
    return model.add_constraint(indicator >= expr, name=name or f"ind_{indicator.name}")


def ordered_position_chain(
    model: Model,
    position_exprs: Sequence[LinExpr],
    name_prefix: str = "sym",
) -> List[Constraint]:
    """Add ``position_exprs[i] <= position_exprs[i+1]`` for consecutive pairs.

    This is the standard symmetry-breaking device for groups of
    interchangeable entities: if the *positions* of the group's members (for
    the partitioning model, ``sum_p p * y[t,p]``) are forced into a fixed
    order, every permutation-symmetric family of solutions collapses to its
    single sorted representative, while at least one optimum always survives
    (sorting a feasible solution's positions within an interchangeable group
    is again feasible with the same objective).  Returns the added
    constraints (empty for groups of fewer than two members).
    """
    constraints: List[Constraint] = []
    for index in range(len(position_exprs) - 1):
        constraints.append(
            model.add_constraint(
                position_exprs[index] <= position_exprs[index + 1],
                name=f"{name_prefix}[{index}]",
            )
        )
    return constraints


def at_most_one(model: Model, variables: Iterable[Variable], name: str = "") -> Constraint:
    """Add ``sum(variables) <= 1`` (a common side constraint)."""
    variables = list(variables)
    if not variables:
        raise ModelError("at_most_one requires at least one variable")
    return model.add_constraint(linear_sum(variables) <= 1, name=name)


def exactly_one(model: Model, variables: Iterable[Variable], name: str = "") -> Constraint:
    """Add ``sum(variables) == 1`` (the uniqueness constraint shape, Eq. 1)."""
    variables = list(variables)
    if not variables:
        raise ModelError("exactly_one requires at least one variable")
    return model.add_constraint(linear_sum(variables) == 1, name=name)
