"""Solution and status objects returned by the ILP solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional

from ..errors import ModelError
from .expr import Variable


class SolveStatus(str, Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


@dataclass
class Solution:
    """Result of solving a model.

    Attributes
    ----------
    status:
        The :class:`SolveStatus` outcome.
    objective:
        Objective value at the returned point (``None`` unless optimal or a
        feasible incumbent was found at the iteration limit).
    values:
        Mapping from :class:`Variable` to its value.
    backend:
        Name of the solver backend that produced the solution.
    iterations:
        Backend-specific work counter (simplex pivots or B&B nodes).
    solve_time:
        Wall-clock seconds spent in the backend.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    backend: str = ""
    iterations: int = 0
    solve_time: float = 0.0

    @property
    def is_optimal(self) -> bool:
        """Whether the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        """Whether the solution carries a usable assignment."""
        return self.status is SolveStatus.OPTIMAL and bool(self.values) or (
            self.status is SolveStatus.ITERATION_LIMIT and bool(self.values)
        )

    def value(self, variable: Variable) -> float:
        """Value of *variable* in the solution."""
        try:
            return self.values[variable]
        except KeyError:
            raise ModelError(
                f"solution does not contain variable {variable.name!r}"
            )

    def value_by_name(self, name: str) -> float:
        """Value of the variable called *name* (linear scan; for tests/debug)."""
        for variable, value in self.values.items():
            if variable.name == name:
                return value
        raise ModelError(f"solution does not contain a variable named {name!r}")

    def rounded_values(self, digits: int = 6) -> Dict[str, float]:
        """Name-keyed values rounded for printing."""
        return {var.name: round(val, digits) for var, val in self.values.items()}

    def binary_value(self, variable: Variable, tolerance: float = 1e-5) -> bool:
        """Interpret a 0-1 variable's value as a boolean, validating integrality."""
        value = self.value(variable)
        if abs(value - round(value)) > tolerance:
            raise ModelError(
                f"variable {variable.name!r} is not integral in the solution "
                f"(value {value})"
            )
        return bool(round(value))

    def as_name_dict(self) -> Dict[str, float]:
        """Name-keyed copy of the assignment."""
        return {var.name: val for var, val in self.values.items()}


def assignment_from_names(
    variables: Mapping[str, Variable], values: Mapping[str, float]
) -> Dict[Variable, float]:
    """Build a Variable-keyed assignment from name-keyed values (test helper)."""
    missing = set(values) - set(variables)
    if missing:
        raise ModelError(f"unknown variable names in assignment: {sorted(missing)}")
    return {variables[name]: float(value) for name, value in values.items()}
