"""Variables and linear expressions for the ILP modelling layer.

The paper solves its temporal-partitioning model with CPLEX; since no
commercial solver is available here, the library ships its own small
modelling layer (this module and its siblings) together with three
interchangeable solving backends (pure-Python simplex, branch-and-bound, and
scipy's HiGHS).  The modelling layer is deliberately tiny but complete enough
for the paper's model: binary/integer/continuous variables, linear
expressions, <=/>=/== constraints and a linear objective.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, Mapping, Tuple, Union

from ..errors import ModelError

Number = Union[int, float]


class VarType(str, Enum):
    """Variable domains supported by the solvers."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A decision variable.

    Variables are created through :meth:`repro.ilp.model.Model.add_variable`
    (which assigns them a stable column index); they support the arithmetic
    operators needed to write readable model-building code::

        model.add_constraint(2 * x + y <= 10, name="capacity")
    """

    __slots__ = ("name", "index", "var_type", "lower", "upper")

    def __init__(
        self,
        name: str,
        index: int,
        var_type: VarType = VarType.CONTINUOUS,
        lower: float = 0.0,
        upper: float = float("inf"),
    ) -> None:
        if not name:
            raise ModelError("variable name must not be empty")
        if lower > upper:
            raise ModelError(
                f"variable {name!r} has empty domain [{lower}, {upper}]"
            )
        if var_type is VarType.BINARY:
            lower, upper = max(lower, 0.0), min(upper, 1.0)
        self.name = name
        self.index = index
        self.var_type = var_type
        self.lower = float(lower)
        self.upper = float(upper)

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take an integer value."""
        return self.var_type in (VarType.INTEGER, VarType.BINARY)

    # -- arithmetic sugar ---------------------------------------------------

    def to_expr(self) -> "LinExpr":
        """This variable as a single-term linear expression."""
        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-1.0 * self.to_expr()) + other

    def __mul__(self, factor: Number) -> "LinExpr":
        return self.to_expr() * factor

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        # Comparing against a Variable/LinExpr/number builds a constraint;
        # identity semantics are preserved through __hash__ (object identity).
        return self.to_expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, type={self.var_type.value})"


class LinExpr:
    """An affine expression ``sum_i coeff_i * var_i + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] = None, constant: float = 0.0) -> None:
        self.terms: Dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def from_value(value: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Coerce a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value.copy()
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise ModelError(f"cannot build a linear expression from {value!r}")

    @staticmethod
    def sum(values: Iterable[Union["LinExpr", Variable, Number]]) -> "LinExpr":
        """Sum an iterable of variables/expressions/numbers."""
        result = LinExpr()
        for value in values:
            result += value
        return result

    def copy(self) -> "LinExpr":
        """An independent copy of this expression."""
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic ----------------------------------------------------------

    def _add_inplace(self, other: Union["LinExpr", Variable, Number], sign: float) -> "LinExpr":
        other_expr = LinExpr.from_value(other)
        result = self.copy()
        for var, coeff in other_expr.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + sign * coeff
        result.constant += sign * other_expr.constant
        return result

    def __add__(self, other):
        return self._add_inplace(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._add_inplace(other, -1.0)

    def __rsub__(self, other):
        return LinExpr.from_value(other)._add_inplace(self, -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise ModelError(
                "linear expressions can only be multiplied by numbers; "
                "products of variables must be linearised (see repro.ilp.linearize)"
            )
        return LinExpr(
            {var: coeff * factor for var, coeff in self.terms.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ---------------------------------------

    def __le__(self, other):
        from .constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.LE)

    def __ge__(self, other):
        from .constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from .constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    # -- evaluation -----------------------------------------------------------

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for var, coeff in self.terms.items():
            try:
                total += coeff * assignment[var]
            except KeyError:
                raise ModelError(f"assignment is missing variable {var.name!r}")
        return total

    def variables(self) -> Tuple[Variable, ...]:
        """Variables appearing with a non-zero coefficient."""
        return tuple(var for var, coeff in self.terms.items() if coeff != 0.0)

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def linear_sum(values: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Module-level alias of :meth:`LinExpr.sum` for readability at call sites."""
    return LinExpr.sum(values)
