"""Branch-and-bound MILP solver built on LP relaxations.

This is the library's own exact 0-1/integer solver.  It follows the textbook
recipe:

1. solve the LP relaxation of the node (scipy HiGHS or the built-in simplex);
2. prune if infeasible or if the relaxation bound cannot beat the incumbent;
3. if the relaxation is integral, update the incumbent;
4. otherwise pick the most fractional integer variable and branch on
   ``x <= floor(value)`` / ``x >= ceil(value)`` by tightening its bounds.

Node selection is best-first (lowest relaxation bound first) which keeps the
incumbent gap small on the partitioning models; a depth-first tiebreak limits
memory use.

The search can be **warm-started** with a known feasible solution (an
*incumbent*): pruning then works from node one instead of waiting for the
tree to produce its first integral point, and — because the popped bounds of
a best-first search are non-decreasing — the whole run terminates the moment
the best open bound cannot beat the incumbent.  The temporal partitioner
feeds the list-scheduler solution in here, which is what makes the exact
solve "never worse than the heuristic" by construction rather than by
theorem.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SolverError
from .expr import Variable
from .model import MatrixForm, Model
from .simplex import LpResult, solve_lp
from .solution import Solution, SolveStatus

#: Tolerance below which a value counts as integral.
INTEGRALITY_TOLERANCE = 1e-6

#: Margin (in objective units) a candidate must improve the incumbent by.
IMPROVEMENT_EPSILON = 1e-9


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: bound plus per-variable bound overrides."""

    bound: float
    order: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


LpSolver = Callable[[MatrixForm, int], LpResult]


def _default_lp_solver(form: MatrixForm, max_iterations: int) -> LpResult:
    """Prefer scipy's HiGHS linprog; fall back to the built-in simplex."""
    try:
        from .scipy_backend import solve_lp_scipy

        return solve_lp_scipy(form, max_iterations=max_iterations)
    except ImportError:  # pragma: no cover - scipy is a declared dependency
        return solve_lp(form, max_iterations=max_iterations)


def incumbent_vector(
    form: MatrixForm,
    incumbent: Mapping[Variable, float],
    tolerance: float = 1e-6,
) -> Optional[np.ndarray]:
    """Validate a warm-start assignment against *form*; ``None`` if unusable.

    The assignment must cover every variable, respect the bounds and
    integrality, and satisfy every row to within *tolerance* (plus a small
    relative slack for large right-hand sides).  An invalid incumbent is
    reported as ``None`` rather than an error so callers can always attempt
    a warm start and silently fall back to a cold one.
    """
    x = np.full(form.num_variables, np.nan)
    for variable, value in incumbent.items():
        if 0 <= variable.index < form.num_variables:
            x[variable.index] = value
    if np.isnan(x).any():
        return None
    integral = form.integrality > 0
    if np.abs(x[integral] - np.round(x[integral])).max(initial=0.0) > tolerance:
        return None
    x[integral] = np.round(x[integral])
    if (x < form.lower - tolerance).any() or (x > form.upper + tolerance).any():
        return None
    if form.a_ub.size:
        slack = form.b_ub - form.a_ub @ x
        if (slack < -(tolerance + 1e-9 * np.abs(form.b_ub))).any():
            return None
    if form.a_eq.size:
        residual = np.abs(form.a_eq @ x - form.b_eq)
        if (residual > tolerance + 1e-9 * np.abs(form.b_eq)).any():
            return None
    return x


def solve_branch_and_bound(
    model: Model,
    lp_solver: Optional[LpSolver] = None,
    max_nodes: int = 200000,
    time_limit: Optional[float] = None,
    lp_iterations: int = 100000,
    incumbent: Optional[Mapping[Variable, float]] = None,
) -> Solution:
    """Solve *model* to optimality with branch and bound.

    Parameters
    ----------
    model:
        The model to solve.  Maximisation models are handled transparently.
    lp_solver:
        Callable used for node relaxations; defaults to scipy HiGHS with a
        fallback to the built-in simplex.
    max_nodes:
        Safety cap on explored nodes; exceeding it returns the best incumbent
        with status ``ITERATION_LIMIT``.
    time_limit:
        Optional wall-clock limit in seconds (same incumbent semantics).
    incumbent:
        Optional warm-start assignment (variable -> value).  If it is
        feasible for the model it seeds the upper bound, so the search only
        explores nodes that can strictly improve on it; if it is not (or not
        given) the search runs cold.  The seeded solution is returned when
        nothing in the tree beats it.
    """
    solver = lp_solver or _default_lp_solver
    form = model.to_matrix_form()
    start = time.perf_counter()

    integral_columns = np.nonzero(form.integrality > 0)[0]

    incumbent_x: Optional[np.ndarray] = None
    incumbent_objective = math.inf
    if incumbent is not None:
        seeded = incumbent_vector(form, incumbent)
        if seeded is not None:
            incumbent_x = seeded
            incumbent_objective = (
                float(form.objective @ seeded) + form.objective_constant
            )

    root = _Node(bound=-math.inf, order=0, lower=form.lower.copy(), upper=form.upper.copy())
    heap: List[_Node] = [root]
    explored = 0
    order_counter = 1

    def out_of_budget() -> bool:
        if explored >= max_nodes:
            return True
        if time_limit is not None and time.perf_counter() - start > time_limit:
            return True
        return False

    proven = False
    while heap:
        if out_of_budget():
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_objective - IMPROVEMENT_EPSILON and incumbent_x is not None:
            # Best-first pops bounds in non-decreasing order, so once the
            # best open bound cannot beat the incumbent nothing on the heap
            # can: the incumbent is proven optimal.
            proven = True
            break
        explored += 1

        node_form = MatrixForm(
            objective=form.objective,
            a_ub=form.a_ub,
            b_ub=form.b_ub,
            a_eq=form.a_eq,
            b_eq=form.b_eq,
            lower=node.lower,
            upper=node.upper,
            integrality=form.integrality,
            variables=form.variables,
            objective_constant=form.objective_constant,
        )
        relaxation = solver(node_form, lp_iterations)
        if relaxation.status is SolveStatus.INFEASIBLE:
            continue
        if relaxation.status is SolveStatus.UNBOUNDED:
            elapsed = time.perf_counter() - start
            return Solution(
                status=SolveStatus.UNBOUNDED,
                backend="branch-and-bound",
                iterations=explored,
                solve_time=elapsed,
            )
        if relaxation.status is not SolveStatus.OPTIMAL or relaxation.x is None:
            raise SolverError(
                f"LP relaxation failed with status {relaxation.status.value} "
                "inside branch and bound"
            )
        if relaxation.objective is None:
            raise SolverError("LP relaxation returned no objective value")
        if relaxation.objective >= incumbent_objective - IMPROVEMENT_EPSILON:
            continue  # cannot improve the incumbent

        x = np.asarray(relaxation.x, dtype=float)
        fractional = _most_fractional(x, integral_columns)
        if fractional is None:
            # Integral solution: new incumbent.
            rounded = x.copy()
            rounded[integral_columns] = np.round(rounded[integral_columns])
            objective = float(form.objective @ rounded) + form.objective_constant
            if objective < incumbent_objective - IMPROVEMENT_EPSILON:
                incumbent_objective = objective
                incumbent_x = rounded
            continue

        column, value = fractional
        floor_value = math.floor(value + INTEGRALITY_TOLERANCE)
        ceil_value = floor_value + 1

        down_upper = node.upper.copy()
        down_upper[column] = min(down_upper[column], floor_value)
        up_lower = node.lower.copy()
        up_lower[column] = max(up_lower[column], ceil_value)

        if node.lower[column] <= down_upper[column]:
            heapq.heappush(
                heap,
                _Node(
                    bound=relaxation.objective,
                    order=order_counter,
                    lower=node.lower.copy(),
                    upper=down_upper,
                    depth=node.depth + 1,
                ),
            )
            order_counter += 1
        if up_lower[column] <= node.upper[column]:
            heapq.heappush(
                heap,
                _Node(
                    bound=relaxation.objective,
                    order=order_counter,
                    lower=up_lower,
                    upper=node.upper.copy(),
                    depth=node.depth + 1,
                ),
            )
            order_counter += 1

    elapsed = time.perf_counter() - start
    exhausted = proven or not heap
    if incumbent_x is None:
        status = SolveStatus.INFEASIBLE if exhausted else SolveStatus.ITERATION_LIMIT
        return Solution(
            status=status,
            backend="branch-and-bound",
            iterations=explored,
            solve_time=elapsed,
        )

    values: Dict = {
        variable: (
            float(round(incumbent_x[variable.index]))
            if variable.is_integral
            else float(incumbent_x[variable.index])
        )
        for variable in form.variables
    }
    objective = incumbent_objective
    if not model.is_minimization:
        objective = -objective
    status = SolveStatus.OPTIMAL if exhausted else SolveStatus.ITERATION_LIMIT
    return Solution(
        status=status,
        objective=objective,
        values=values,
        backend="branch-and-bound",
        iterations=explored,
        solve_time=elapsed,
    )


def _most_fractional(
    x: np.ndarray, integral_columns: np.ndarray
) -> Optional[Tuple[int, float]]:
    """The integral column whose value is farthest from an integer, if any."""
    best_column: Optional[int] = None
    best_distance = INTEGRALITY_TOLERANCE
    for column in integral_columns:
        value = x[column]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_column = int(column)
    if best_column is None:
        return None
    return best_column, float(x[best_column])
