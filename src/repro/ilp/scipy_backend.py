"""scipy-based LP/MILP backends (HiGHS).

These are the fast backends: `scipy.optimize.linprog` for LP relaxations and
`scipy.optimize.milp` for complete mixed-integer solves.  They are optional in
the sense that the rest of the library also works with the pure-Python
simplex/branch-and-bound backends, but scipy is a declared dependency so they
are normally available.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..errors import SolverError
from .model import MatrixForm, Model
from .simplex import LpResult
from .solution import Solution, SolveStatus


def _status_from_linprog(status_code: int) -> SolveStatus:
    """Map scipy.optimize.linprog status codes to :class:`SolveStatus`."""
    if status_code == 0:
        return SolveStatus.OPTIMAL
    if status_code == 1:
        return SolveStatus.ITERATION_LIMIT
    if status_code == 2:
        return SolveStatus.INFEASIBLE
    if status_code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR


def solve_lp_scipy(form: MatrixForm, max_iterations: int = 100000) -> LpResult:
    """Solve the LP relaxation of *form* with scipy's HiGHS ``linprog``."""
    from scipy.optimize import linprog

    start = time.perf_counter()
    bounds = list(zip(form.lower, form.upper))
    result = linprog(
        c=form.objective,
        A_ub=form.a_ub if form.a_ub.size else None,
        b_ub=form.b_ub if form.b_ub.size else None,
        A_eq=form.a_eq if form.a_eq.size else None,
        b_eq=form.b_eq if form.b_eq.size else None,
        bounds=bounds,
        method="highs",
        options={"maxiter": max_iterations},
    )
    elapsed = time.perf_counter() - start
    status = _status_from_linprog(result.status)
    if status is not SolveStatus.OPTIMAL:
        return LpResult(status, None, None, int(result.nit or 0), elapsed)
    objective = float(result.fun) + form.objective_constant
    return LpResult(
        SolveStatus.OPTIMAL,
        objective,
        np.asarray(result.x, dtype=float),
        int(result.nit or 0),
        elapsed,
    )


def solve_milp_scipy(
    model: Model,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
) -> Solution:
    """Solve *model* exactly with scipy's HiGHS ``milp``."""
    from scipy.optimize import LinearConstraint, milp

    form = model.to_matrix_form()
    start = time.perf_counter()
    constraints = []
    if form.a_ub.size:
        constraints.append(
            LinearConstraint(form.a_ub, -np.inf * np.ones(len(form.b_ub)), form.b_ub)
        )
    if form.a_eq.size:
        constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))
    from scipy.optimize import Bounds

    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap:
        options["mip_rel_gap"] = float(mip_gap)
    result = milp(
        c=form.objective,
        constraints=constraints or None,
        integrality=form.integrality,
        bounds=Bounds(form.lower, form.upper),
        options=options or None,
    )
    elapsed = time.perf_counter() - start

    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    elif result.status == 1:
        # Iteration/time limit: may still carry an incumbent.
        status = SolveStatus.ITERATION_LIMIT
    else:
        status = SolveStatus.ERROR

    values = {}
    objective = None
    if result.x is not None:
        raw = np.asarray(result.x, dtype=float)
        values = {
            variable: _clean_value(variable, raw[variable.index])
            for variable in form.variables
        }
        objective = float(form.objective @ raw) + form.objective_constant
        if not model.is_minimization:
            objective = -objective
    elif status is SolveStatus.OPTIMAL:
        raise SolverError("scipy milp reported success but returned no solution")

    return Solution(
        status=status,
        objective=objective,
        values=values,
        backend="scipy-milp",
        iterations=0,
        solve_time=elapsed,
    )


def _clean_value(variable, value: float) -> float:
    """Round integral variables to exact integers to absorb solver tolerance."""
    if variable.is_integral:
        return float(round(value))
    return float(value)
