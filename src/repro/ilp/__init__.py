"""ILP modelling and solving layer (the library's substitute for CPLEX).

Provides a small modelling API (variables, linear expressions, constraints,
models), linearisation helpers for products of binaries, and three solver
backends: scipy HiGHS (``milp``), a branch-and-bound over LP relaxations, and
a pure-Python two-phase simplex for LPs.
"""

from .branch_and_bound import solve_branch_and_bound
from .constraint import Constraint, Sense, ensure_constraint
from .expr import LinExpr, Variable, VarType, linear_sum
from .linearize import (
    at_most_one,
    exactly_one,
    indicator_ge_sum,
    product_linearization,
)
from .model import MatrixForm, Model
from .simplex import LpResult, solve_lp
from .solution import Solution, SolveStatus, assignment_from_names
from .solver import BACKENDS, DEFAULT_BACKEND, solve, solve_lp_relaxation

__all__ = [
    "BACKENDS",
    "Constraint",
    "DEFAULT_BACKEND",
    "LinExpr",
    "LpResult",
    "MatrixForm",
    "Model",
    "Sense",
    "Solution",
    "SolveStatus",
    "VarType",
    "Variable",
    "assignment_from_names",
    "at_most_one",
    "ensure_constraint",
    "exactly_one",
    "indicator_ge_sum",
    "linear_sum",
    "product_linearization",
    "solve",
    "solve_branch_and_bound",
    "solve_lp",
    "solve_lp_relaxation",
]
