"""The ILP/LP model container.

A :class:`Model` owns variables, constraints and a linear objective, and can
export itself to the dense matrix form consumed by the solver backends
(``minimise c.x subject to A_ub.x <= b_ub, A_eq.x == b_eq, lb <= x <= ub``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import ModelError
from .constraint import Constraint, Sense, ensure_constraint
from .expr import LinExpr, Number, Variable, VarType


class MatrixForm:
    """Dense matrix export of a model (the standard LP/MILP form)."""

    def __init__(
        self,
        objective: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        integrality: np.ndarray,
        variables: Sequence[Variable],
        objective_constant: float,
    ) -> None:
        self.objective = objective
        self.a_ub = a_ub
        self.b_ub = b_ub
        self.a_eq = a_eq
        self.b_eq = b_eq
        self.lower = lower
        self.upper = upper
        self.integrality = integrality
        self.variables = list(variables)
        self.objective_constant = objective_constant

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        """Number of inequality plus equality rows."""
        return self.a_ub.shape[0] + self.a_eq.shape[0]


class Model:
    """A mixed 0-1/integer/continuous linear program."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._by_name: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense_minimize = True

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        var_type: VarType = VarType.CONTINUOUS,
        lower: float = 0.0,
        upper: float = float("inf"),
    ) -> Variable:
        """Create and register a new decision variable."""
        if name in self._by_name:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        variable = Variable(name, len(self._variables), var_type, lower, upper)
        self._variables.append(variable)
        self._by_name[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        """Create a 0-1 variable."""
        return self.add_variable(name, VarType.BINARY, 0.0, 1.0)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Variable:
        """Create an integer variable."""
        return self.add_variable(name, VarType.INTEGER, lower, upper)

    def add_continuous(
        self, name: str, lower: float = 0.0, upper: float = float("inf")
    ) -> Variable:
        """Create a continuous variable."""
        return self.add_variable(name, VarType.CONTINUOUS, lower, upper)

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r} in model {self.name!r}")

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in creation order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self._variables)

    @property
    def num_integer_variables(self) -> int:
        """Number of variables with an integrality requirement."""
        return sum(1 for v in self._variables if v.is_integral)

    # ------------------------------------------------------------------
    # Constraints and objective
    # ------------------------------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (optionally overriding its name)."""
        constraint = ensure_constraint(constraint)
        for variable in constraint.variables():
            self._check_owned(variable)
        if name:
            constraint = constraint.named(name)
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint], prefix: str = "") -> None:
        """Register several constraints, auto-numbering their names."""
        for index, constraint in enumerate(constraints):
            label = f"{prefix}{index}" if prefix else ""
            self.add_constraint(constraint, name=label)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """All constraints in insertion order."""
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def minimize(self, objective: Union[LinExpr, Variable, Number]) -> None:
        """Set a minimisation objective."""
        self._objective = LinExpr.from_value(objective)
        self._sense_minimize = True
        for variable in self._objective.variables():
            self._check_owned(variable)

    def maximize(self, objective: Union[LinExpr, Variable, Number]) -> None:
        """Set a maximisation objective."""
        self.minimize(objective)
        self._sense_minimize = False

    @property
    def objective(self) -> LinExpr:
        """The objective expression as stated by the user."""
        return self._objective

    @property
    def is_minimization(self) -> bool:
        """Whether the model minimises (True) or maximises (False)."""
        return self._sense_minimize

    def _check_owned(self, variable: Variable) -> None:
        owned = self._by_name.get(variable.name)
        if owned is not variable:
            raise ModelError(
                f"variable {variable.name!r} does not belong to model {self.name!r}"
            )

    # ------------------------------------------------------------------
    # Evaluation / export
    # ------------------------------------------------------------------

    def objective_value(self, assignment: Mapping[Variable, float]) -> float:
        """Objective value (in the user's sense) under an assignment."""
        return self._objective.value(assignment)

    def is_feasible(
        self, assignment: Mapping[Variable, float], tolerance: float = 1e-6
    ) -> bool:
        """Whether an assignment satisfies every constraint and variable bound."""
        for variable in self._variables:
            value = assignment.get(variable)
            if value is None:
                return False
            if value < variable.lower - tolerance or value > variable.upper + tolerance:
                return False
            if variable.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(c.is_satisfied(assignment, tolerance) for c in self._constraints)

    def violated_constraints(
        self, assignment: Mapping[Variable, float], tolerance: float = 1e-6
    ) -> List[Constraint]:
        """Constraints not satisfied by *assignment* (for diagnostics)."""
        return [c for c in self._constraints if not c.is_satisfied(assignment, tolerance)]

    def to_matrix_form(self) -> MatrixForm:
        """Export the model to dense arrays for the numerical backends.

        Maximisation objectives are negated so every backend can minimise.
        """
        count = len(self._variables)
        objective = np.zeros(count)
        for variable, coeff in self._objective.terms.items():
            objective[variable.index] += coeff
        objective_constant = self._objective.constant
        if not self._sense_minimize:
            objective = -objective
            objective_constant = -objective_constant

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(count)
            for variable, coeff in constraint.lhs.terms.items():
                row[variable.index] += coeff
            if constraint.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, count))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, count))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        lower = np.array([v.lower for v in self._variables])
        upper = np.array([v.upper for v in self._variables])
        integrality = np.array([1 if v.is_integral else 0 for v in self._variables])
        return MatrixForm(
            objective=objective,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=lower,
            upper=upper,
            integrality=integrality,
            variables=self._variables,
            objective_constant=objective_constant,
        )

    def statistics(self) -> Dict[str, int]:
        """Size statistics, useful for logging and the solve-time benches."""
        binary = sum(1 for v in self._variables if v.var_type is VarType.BINARY)
        integer = sum(1 for v in self._variables if v.var_type is VarType.INTEGER)
        return {
            "variables": self.num_variables,
            "binary_variables": binary,
            "integer_variables": integer,
            "continuous_variables": self.num_variables - binary - integer,
            "constraints": self.num_constraints,
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"Model(name={self.name!r}, variables={stats['variables']}, "
            f"constraints={stats['constraints']})"
        )
