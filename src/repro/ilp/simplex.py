"""A self-contained dense two-phase simplex LP solver.

This backend exists so the library has no hard dependency on any external
optimiser: the branch-and-bound MILP solver can run its LP relaxations either
through scipy's HiGHS (fast) or through this pure-Python/numpy implementation
(dependable, easy to instrument, and handy for unit-testing the modelling
layer itself).

Scope: minimise ``c.x`` subject to ``A_ub.x <= b_ub``, ``A_eq.x == b_eq`` and
finite, non-negative lower bounds on the variables (upper bounds are turned
into extra ``<=`` rows).  That covers every model this library builds — the
temporal-partitioning ILP only has 0/1 variables and non-negative delay
variables.

Two interchangeable pivot engines implement the iteration loop:

* ``"vectorised"`` (default) — numpy throughout: Dantzig pricing (most
  negative reduced cost), a vectorised ratio test, and rank-one tableau
  updates via an outer product.  A Bland's-rule fallback kicks in after a
  streak of degenerate pivots so termination stays guaranteed.
* ``"reference"`` — the original pure-Python pivot loop with Bland's rule
  everywhere.  It is kept verbatim as the differential reference the
  vectorised engine is tested against, and as a fallback
  (``REPRO_SIMPLEX_ENGINE=reference``).

Both engines solve the same LP, so objective values agree to solver
tolerance; the optimal *vertex* may legitimately differ on degenerate
models.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import SolverError
from .model import MatrixForm
from .solution import SolveStatus

#: Tolerance used for optimality/feasibility tests inside the simplex.
EPSILON = 1e-9

#: The available pivot engines.
ENGINES = ("vectorised", "reference")

#: Consecutive degenerate pivots after which the vectorised engine drops
#: from Dantzig pricing to Bland's rule (anti-cycling).
BLAND_SWITCH_STREAK = 64

#: Environment variable overriding the default engine (e.g. for A/B runs).
ENGINE_ENV_VAR = "REPRO_SIMPLEX_ENGINE"


def default_engine() -> str:
    """The engine used when ``solve_lp`` is called without an explicit one."""
    engine = os.environ.get(ENGINE_ENV_VAR, "vectorised")
    if engine not in ENGINES:
        raise SolverError(
            f"unknown simplex engine {engine!r} in ${ENGINE_ENV_VAR}; "
            f"choose from {ENGINES}"
        )
    return engine


@dataclass
class LpResult:
    """Raw result of an LP solve in matrix space (values indexed by column)."""

    status: SolveStatus
    objective: Optional[float]
    x: Optional[np.ndarray]
    iterations: int
    solve_time: float


def _prepare_standard_form(form: MatrixForm):
    """Shift lower bounds to zero and fold upper bounds into ``<=`` rows.

    Returns the augmented ``(c, a_ub, b_ub, a_eq, b_eq, shift)`` tuple where
    the original variable values are recovered as ``x = y + shift``.
    """
    lower = form.lower.copy()
    upper = form.upper.copy()
    if np.any(np.isneginf(lower)):
        raise SolverError(
            "the built-in simplex requires finite lower bounds on all variables"
        )
    shift = lower
    c = form.objective.astype(float).copy()

    a_ub = form.a_ub.astype(float).copy()
    b_ub = form.b_ub.astype(float).copy()
    a_eq = form.a_eq.astype(float).copy()
    b_eq = form.b_eq.astype(float).copy()

    # Substitute x = y + shift (y >= 0).
    if a_ub.size:
        b_ub = b_ub - a_ub @ shift
    if a_eq.size:
        b_eq = b_eq - a_eq @ shift

    # Upper bounds become y_j <= upper_j - shift_j rows (only finite ones).
    finite_upper = np.isfinite(upper)
    if np.any(finite_upper):
        indices = np.nonzero(finite_upper)[0]
        extra_rows = np.zeros((len(indices), form.num_variables))
        extra_rows[np.arange(len(indices)), indices] = 1.0
        extra_rhs = upper[indices] - shift[indices]
        a_ub = np.vstack([a_ub, extra_rows]) if a_ub.size else extra_rows
        b_ub = np.concatenate([b_ub, extra_rhs]) if b_ub.size else extra_rhs

    return c, a_ub, b_ub, a_eq, b_eq, shift


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, column: int) -> None:
    """Perform a pivot on (row, column) of the simplex tableau in place.

    Reference implementation: an explicit Python loop over rows (Gauss-Jordan
    elimination one row at a time).
    """
    tableau[row] /= tableau[row, column]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, column]) > EPSILON:
            tableau[other] -= tableau[other, column] * tableau[row]
    basis[row] = column


def _pivot_vectorised(
    tableau: np.ndarray, basis: np.ndarray, row: int, column: int
) -> None:
    """Pivot on (row, column) as a single rank-one update (no Python loop)."""
    pivot_row = tableau[row] / tableau[row, column]
    tableau[row] = pivot_row
    column_values = tableau[:, column].copy()
    column_values[row] = 0.0
    # Only rows with a non-negligible coefficient in the pivot column change;
    # on the partitioning models these columns are sparse, so the masked
    # rank-one update touches a fraction of the tableau.
    rows = np.nonzero(np.abs(column_values) > EPSILON)[0]
    if rows.size:
        tableau[rows] -= np.outer(column_values[rows], pivot_row)
    # The pivot column is an identity column by construction; write it
    # exactly to keep residual noise out of later pricing steps.
    tableau[rows, column] = 0.0
    tableau[row, column] = 1.0
    basis[row] = column


def _simplex_iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    num_columns: int,
    max_iterations: int,
    vectorised: bool = False,
) -> tuple:
    """Run primal simplex iterations on a tableau whose last row is the objective.

    Returns ``(status, iterations)``.  The reference engine uses Bland's rule
    throughout (guaranteed termination).  The vectorised engine prices with
    Dantzig's rule (most negative reduced cost — typically far fewer
    iterations) and falls back to Bland's rule after
    :data:`BLAND_SWITCH_STREAK` consecutive degenerate pivots so it cannot
    cycle either.
    """
    iterations = 0
    num_rows = tableau.shape[0] - 1
    pivot = _pivot_vectorised if vectorised else _pivot
    degenerate_streak = 0
    while iterations < max_iterations:
        objective_row = tableau[-1, :num_columns]
        if vectorised and degenerate_streak < BLAND_SWITCH_STREAK:
            entering = int(np.argmin(objective_row))
            if objective_row[entering] >= -EPSILON:
                return SolveStatus.OPTIMAL, iterations
        else:
            entering_candidates = np.nonzero(objective_row < -EPSILON)[0]
            if entering_candidates.size == 0:
                return SolveStatus.OPTIMAL, iterations
            entering = int(entering_candidates[0])  # Bland's rule: smallest index.

        column = tableau[:num_rows, entering]
        positive = column > EPSILON
        if not np.any(positive):
            return SolveStatus.UNBOUNDED, iterations
        ratios = np.full(num_rows, np.inf)
        rhs = tableau[:num_rows, -1]
        ratios[positive] = rhs[positive] / column[positive]
        best_ratio = ratios.min()
        # Tie-break: among minimum-ratio rows pick the one whose basic
        # variable has the smallest index (Bland-compatible, deterministic).
        tie_rows = np.nonzero(ratios <= best_ratio + EPSILON)[0]
        if tie_rows.size == 1:
            leaving = int(tie_rows[0])
        else:
            leaving = int(tie_rows[np.argmin(basis[tie_rows])])
        degenerate_streak = 0 if best_ratio > EPSILON else degenerate_streak + 1
        pivot(tableau, basis, leaving, entering)
        iterations += 1
    return SolveStatus.ITERATION_LIMIT, iterations


def solve_lp(
    form: MatrixForm,
    max_iterations: int = 20000,
    engine: Optional[str] = None,
) -> LpResult:
    """Solve the LP relaxation of *form* with a two-phase dense simplex.

    *engine* selects the pivot engine (one of :data:`ENGINES`); the default
    is the vectorised engine unless ``REPRO_SIMPLEX_ENGINE`` says otherwise.
    """
    if engine is None:
        engine = default_engine()
    elif engine not in ENGINES:
        raise SolverError(f"unknown simplex engine {engine!r}; choose from {ENGINES}")
    vectorised = engine == "vectorised"
    pivot = _pivot_vectorised if vectorised else _pivot
    start = time.perf_counter()
    c, a_ub, b_ub, a_eq, b_eq, shift = _prepare_standard_form(form)
    num_vars = form.num_variables

    # Build equality system: a_ub y + s = b_ub (s slack), a_eq y = b_eq.
    num_ub = a_ub.shape[0]
    num_eq = a_eq.shape[0]
    num_rows = num_ub + num_eq
    num_structural = num_vars + num_ub

    a = np.zeros((num_rows, num_structural))
    b = np.zeros(num_rows)
    if num_ub:
        a[:num_ub, :num_vars] = a_ub
        a[:num_ub, num_vars:num_vars + num_ub] = np.eye(num_ub)
        b[:num_ub] = b_ub
    if num_eq:
        a[num_ub:, :num_vars] = a_eq
        b[num_ub:] = b_eq

    # Make every right-hand side non-negative.
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    # Rows that still have a usable identity column (slack with +1 coefficient)
    # need no artificial variable; everything else gets one.
    needs_artificial = np.ones(num_rows, dtype=bool)
    basis = np.full(num_rows, -1, dtype=int)
    for row in range(num_ub):
        slack_column = num_vars + row
        if a[row, slack_column] > 0.5:  # slack kept its +1 sign
            needs_artificial[row] = False
            basis[row] = slack_column

    artificial_rows = np.nonzero(needs_artificial)[0]
    num_artificial = len(artificial_rows)
    total_columns = num_structural + num_artificial

    tableau = np.zeros((num_rows + 1, total_columns + 1))
    tableau[:num_rows, :num_structural] = a
    tableau[:num_rows, -1] = b
    for offset, row in enumerate(artificial_rows):
        column = num_structural + offset
        tableau[row, column] = 1.0
        basis[row] = column

    total_iterations = 0

    # ---------------- Phase 1: drive artificial variables to zero ----------
    if num_artificial:
        tableau[-1, :] = 0.0
        tableau[-1, num_structural:num_structural + num_artificial] = 1.0
        # Express the phase-1 objective in terms of the non-basic variables.
        for row in artificial_rows:
            tableau[-1, :] -= tableau[row, :]
        status, iterations = _simplex_iterate(
            tableau, basis, total_columns, max_iterations, vectorised=vectorised
        )
        total_iterations += iterations
        phase1_value = -tableau[-1, -1]
        if status is SolveStatus.ITERATION_LIMIT:
            return LpResult(status, None, None, total_iterations, time.perf_counter() - start)
        if phase1_value > 1e-6:
            return LpResult(
                SolveStatus.INFEASIBLE, None, None, total_iterations,
                time.perf_counter() - start,
            )
        # Pivot any artificial variable still in the basis out of it.
        for row in range(num_rows):
            if basis[row] >= num_structural:
                pivot_columns = np.nonzero(
                    np.abs(tableau[row, :num_structural]) > EPSILON
                )[0]
                if pivot_columns.size:
                    pivot(tableau, basis, row, int(pivot_columns[0]))
                # Otherwise the row is redundant (all-zero); it stays basic at 0.

    # ---------------- Phase 2: optimise the true objective -----------------
    tableau[-1, :] = 0.0
    tableau[-1, :num_vars] = c
    # Zero out artificial columns so they can never re-enter.
    tableau[:num_rows, num_structural:total_columns] = 0.0
    # Express the objective in terms of the current basis.
    for row in range(num_rows):
        column = basis[row]
        coeff = tableau[-1, column]
        if abs(coeff) > EPSILON:
            tableau[-1, :] -= coeff * tableau[row, :]

    status, iterations = _simplex_iterate(
        tableau, basis, num_structural, max_iterations, vectorised=vectorised
    )
    total_iterations += iterations
    elapsed = time.perf_counter() - start
    if status is SolveStatus.UNBOUNDED:
        return LpResult(SolveStatus.UNBOUNDED, None, None, total_iterations, elapsed)
    if status is SolveStatus.ITERATION_LIMIT:
        return LpResult(SolveStatus.ITERATION_LIMIT, None, None, total_iterations, elapsed)

    solution = np.zeros(num_structural)
    structural = basis < num_structural
    solution[basis[structural]] = tableau[:num_rows, -1][structural]
    x = solution[:num_vars] + shift
    # Recompute the objective in original coordinates to avoid shift bookkeeping.
    objective = float(form.objective @ x) + form.objective_constant
    return LpResult(SolveStatus.OPTIMAL, objective, x, total_iterations, elapsed)
