"""Solver dispatch: one entry point, three interchangeable backends.

* ``"scipy"`` — scipy's HiGHS ``milp`` (default, fastest);
* ``"branch-and-bound"`` — the library's own branch-and-bound over LP
  relaxations (scipy ``linprog`` or the built-in simplex per node);
* ``"simplex"`` — pure LP solve; only valid for models with no integer
  variables (used directly for relaxation studies and tests).

All backends return the same :class:`~repro.ilp.solution.Solution` type, so
callers (the temporal partitioner in particular) never care which one ran.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from ..errors import SolverError
from .branch_and_bound import solve_branch_and_bound
from .expr import Variable
from .model import Model
from .simplex import solve_lp
from .solution import Solution, SolveStatus

#: Names of the available backends, in default-preference order.
BACKENDS = ("scipy", "branch-and-bound", "simplex")

DEFAULT_BACKEND = "scipy"


def solve(
    model: Model,
    backend: str = DEFAULT_BACKEND,
    time_limit: Optional[float] = None,
    max_nodes: int = 200000,
    use_builtin_lp: bool = False,
    incumbent: Optional[Mapping[Variable, float]] = None,
) -> Solution:
    """Solve *model* with the chosen *backend*.

    Parameters
    ----------
    model:
        The model to solve.
    backend:
        One of :data:`BACKENDS`.
    time_limit:
        Optional wall-clock limit in seconds (scipy and branch-and-bound).
    max_nodes:
        Node cap for the branch-and-bound backend.
    use_builtin_lp:
        When solving with branch-and-bound, force the built-in simplex for
        node relaxations instead of scipy's ``linprog``.
    incumbent:
        Optional known-feasible warm-start assignment (variable -> value).
        The branch-and-bound backend seeds its upper bound with it; scipy's
        ``milp`` has no MIP-start hook, so the other backends ignore it.
    """
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")

    if backend == "scipy":
        from .scipy_backend import solve_milp_scipy

        return solve_milp_scipy(model, time_limit=time_limit)

    if backend == "branch-and-bound":
        lp_solver = None
        if use_builtin_lp:
            def lp_solver(form, iterations):
                return solve_lp(form, max_iterations=iterations)
        return solve_branch_and_bound(
            model,
            lp_solver=lp_solver,
            max_nodes=max_nodes,
            time_limit=time_limit,
            incumbent=incumbent,
        )

    # backend == "simplex": LP only.
    if model.num_integer_variables:
        raise SolverError(
            "the 'simplex' backend solves pure LPs; the model has "
            f"{model.num_integer_variables} integer variables — use 'scipy' or "
            "'branch-and-bound'"
        )
    start = time.perf_counter()
    form = model.to_matrix_form()
    result = solve_lp(form)
    elapsed = time.perf_counter() - start
    if result.status is not SolveStatus.OPTIMAL or result.x is None:
        return Solution(
            status=result.status,
            backend="simplex",
            iterations=result.iterations,
            solve_time=elapsed,
        )
    values = {
        variable: float(result.x[variable.index]) for variable in form.variables
    }
    objective = result.objective
    if objective is not None and not model.is_minimization:
        objective = -objective
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="simplex",
        iterations=result.iterations,
        solve_time=elapsed,
    )


def solve_lp_relaxation(model: Model, use_builtin: bool = False) -> Solution:
    """Solve the LP relaxation of *model* (integrality dropped).

    Useful for computing lower bounds on the partitioning latency and for
    studying the tightness of the formulation.
    """
    form = model.to_matrix_form()
    start = time.perf_counter()
    if use_builtin:
        result = solve_lp(form)
        backend = "simplex"
    else:
        try:
            from .scipy_backend import solve_lp_scipy

            result = solve_lp_scipy(form)
            backend = "scipy-linprog"
        except ImportError:  # pragma: no cover - scipy is a declared dependency
            result = solve_lp(form)
            backend = "simplex"
    elapsed = time.perf_counter() - start
    if result.status is not SolveStatus.OPTIMAL or result.x is None:
        return Solution(
            status=result.status,
            backend=backend,
            iterations=result.iterations,
            solve_time=elapsed,
        )
    values = {
        variable: float(result.x[variable.index]) for variable in form.variables
    }
    objective = result.objective
    if objective is not None and not model.is_minimization:
        objective = -objective
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend=backend,
        iterations=result.iterations,
        solve_time=elapsed,
    )
