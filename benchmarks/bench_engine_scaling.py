"""Engine scaling — batched parallel partitioning vs. the serial loop.

Solves a batch of DCT partitioning problems (the case-study graph swept
across distinct reconfiguration times, so no two jobs dedup) three ways:

* the plain serial loop over :class:`IlpTemporalPartitioner` (the baseline
  every caller used before the engine existed);
* a fresh :class:`PartitionEngine` at 1, 2, 4 and 8 workers (cold cache);
* the same engine again (warm cache).

It prints the speedup table and asserts the engine's results are identical
to the serial loop's, that a warm batch costs under 10 % of the cold one,
and — on machines with at least 4 CPUs — that 4 workers beat the serial
loop by at least 2x.

Environment knobs for constrained CI runners:

* ``REPRO_BENCH_BATCH`` — batch size (default 16);
* ``REPRO_BENCH_WORKERS`` — comma-separated worker counts (default 1,2,4,8);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard speedup
  assertion (for tiny smoke budgets where pool startup dominates).

Run standalone (``python benchmarks/bench_engine_scaling.py [--smoke]``) or
under pytest; ``--smoke`` presets a tiny batch with no strict assertions.
"""

from __future__ import annotations

import os
import sys
import time

from bench_utils import record

from repro.partition import IlpTemporalPartitioner, PartitionProblem
from repro.runtime import EngineConfig, PartitionEngine, ct_sweep_jobs
from repro.units import ms

BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "16"))
WORKER_COUNTS = [
    int(item)
    for item in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4,8").split(",")
]


def _ct_values():
    # Distinct CT values so every job is a genuine solve (no batch dedup).
    return [ms(1 + index) for index in range(BATCH_SIZE)]


def test_engine_scaling_and_warm_cache(dct_graph, paper_system, tmp_path):
    ct_values = _ct_values()
    problems = [
        PartitionProblem.from_system(
            dct_graph, paper_system.with_reconfiguration_time(ct)
        )
        for ct in ct_values
    ]

    # Baseline: the serial loop every caller used before the engine existed.
    partitioner = IlpTemporalPartitioner()
    start = time.perf_counter()
    serial_results = [partitioner.partition(problem) for problem in problems]
    serial_time = time.perf_counter() - start

    print()
    print(f"batch of {len(problems)} DCT problems (CT 1..{BATCH_SIZE} ms), "
          f"{os.cpu_count()} CPU(s) available")
    print(f"  serial loop: {serial_time:8.2f} s   (baseline)")

    engine_times = {}
    engines = {}
    for workers in WORKER_COUNTS:
        engine = PartitionEngine(EngineConfig(
            workers=workers, cache_dir=tmp_path / f"cache-{workers}",
        ))
        jobs = ct_sweep_jobs(engine, dct_graph, paper_system, ct_values)
        start = time.perf_counter()
        batch = engine.solve_batch(jobs)
        engine_times[workers] = time.perf_counter() - start
        engines[workers] = (engine, jobs)
        assert batch.ok, batch.describe()
        speedup = serial_time / engine_times[workers]
        print(f"  engine w={workers}: {engine_times[workers]:8.2f} s   "
              f"(speedup {speedup:4.2f}x)")

        # The engine must reproduce the serial loop's results exactly.
        for report, expected in zip(batch, serial_results):
            assert report.outcome.partition_count == expected.partition_count
            assert abs(report.outcome.total_latency - expected.total_latency) < 1e-12

    # Warm rerun: same jobs, same engine -> pure cache hits.
    warm_workers = WORKER_COUNTS[-1]
    engine, jobs = engines[warm_workers]
    start = time.perf_counter()
    warm_batch = engine.solve_batch(jobs)
    warm_time = time.perf_counter() - start
    cold_time = engine_times[warm_workers]
    print(f"  warm cache:  {warm_time:8.4f} s   "
          f"({warm_time / cold_time * 100:4.1f}% of cold)")
    assert warm_batch.ok
    assert all(report.cached for report in warm_batch)
    assert warm_time < 0.10 * cold_time, (
        f"warm batch took {warm_time:.3f} s, over 10% of the cold {cold_time:.3f} s"
    )

    # Cross-process cache reuse: a brand new engine reading the same disk
    # cache must also skip every solve.
    fresh = PartitionEngine(EngineConfig(
        workers=0, cache_dir=tmp_path / f"cache-{warm_workers}",
    ))
    disk_batch = fresh.solve_batch(
        ct_sweep_jobs(fresh, dct_graph, paper_system, ct_values)
    )
    assert disk_batch.ok
    assert all(report.cached for report in disk_batch)

    record(
        "engine_scaling",
        batch_size=len(problems),
        serial_seconds=serial_time,
        serial_jobs_per_sec=len(problems) / serial_time if serial_time else 0.0,
        engine_seconds_by_workers={str(w): t for w, t in engine_times.items()},
        warm_seconds=warm_time,
        warm_fraction_of_cold=warm_time / cold_time if cold_time else 0.0,
        cache_stats=engine.stats.snapshot(),
    )

    cpu_count = os.cpu_count() or 1
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict and cpu_count >= 4 and 4 in engine_times:
        assert serial_time / engine_times[4] >= 2.0, (
            f"4-worker speedup {serial_time / engine_times[4]:.2f}x < 2x "
            f"on a {cpu_count}-CPU machine"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny batch, no strict speedup assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_BATCH", "6")
        os.environ.setdefault("REPRO_BENCH_WORKERS", "1,2")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
