"""Flow-engine scaling — batched end-to-end flows vs. the serial loop.

Runs a batch of complete design flows (the case-study DCT graph swept
across distinct reconfiguration times, so no two jobs dedup) three ways:

* the plain serial loop over :class:`DesignFlow.build` (the baseline every
  caller used before the flow engine existed);
* a fresh :class:`FlowEngine` at 1, 2, 4 and 8 partition workers (cold
  cache);
* the same engine again (warm cache).

It prints the speedup table and asserts the engine's designs are identical
to the serial loop's, that a warm batch costs under 5 % of the cold one
(the ISSUE-2 acceptance bar), and — on machines with at least 4 CPUs —
that 4 workers beat the serial loop by at least 2x.

Environment knobs for constrained CI runners:

* ``REPRO_BENCH_BATCH`` — batch size (default 12);
* ``REPRO_BENCH_WORKERS`` — comma-separated worker counts (default 1,2,4,8);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard speedup
  and warm-cache-percentage assertions (for tiny smoke budgets where pool
  startup and fixed per-job costs dominate).
"""

from __future__ import annotations

import os
import time

from bench_utils import record

from repro.synth import DesignFlow, FlowEngine, FlowJob
from repro.units import ms

BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "12"))
WORKER_COUNTS = [
    int(item)
    for item in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4,8").split(",")
]


def _ct_values():
    # Distinct CT values so every job is a genuine solve (no batch dedup).
    return [ms(1 + index) for index in range(BATCH_SIZE)]


def _flow_jobs(dct_graph, paper_system):
    return [
        FlowJob(
            graph=dct_graph,
            system=paper_system.with_reconfiguration_time(ct),
            tag=f"dct@ct={ct * 1e3:g}ms",
            workload="jpeg_dct",
        )
        for ct in _ct_values()
    ]


def test_flow_engine_scaling_and_warm_cache(dct_graph, paper_system, tmp_path):
    jobs = _flow_jobs(dct_graph, paper_system)

    # Baseline: the serial loop every caller used before the flow engine.
    start = time.perf_counter()
    serial_designs = [
        DesignFlow(job.system, job.options).build(job.graph) for job in jobs
    ]
    serial_time = time.perf_counter() - start

    print()
    print(f"batch of {len(jobs)} complete DCT flows (CT 1..{BATCH_SIZE} ms), "
          f"{os.cpu_count()} CPU(s) available")
    print(f"  serial loop:   {serial_time:8.2f} s   (baseline)")

    engine_times = {}
    engines = {}
    for workers in WORKER_COUNTS:
        engine = FlowEngine(
            workers=workers, cache_dir=tmp_path / f"cache-{workers}"
        )
        start = time.perf_counter()
        batch = engine.run_batch(jobs)
        engine_times[workers] = time.perf_counter() - start
        engines[workers] = engine
        assert batch.ok, batch.describe()
        speedup = serial_time / engine_times[workers]
        print(f"  engine w={workers}:  {engine_times[workers]:8.2f} s   "
              f"(speedup {speedup:4.2f}x)")

        # The engine must reproduce the serial flow's designs exactly.
        for report, expected in zip(batch, serial_designs):
            design = report.design
            assert design.partition_count == expected.partition_count
            assert design.computations_per_run == expected.computations_per_run
            assert abs(design.block_delay - expected.block_delay) < 1e-12
            assert design.partitioning.assignment == expected.partitioning.assignment

    # Warm rerun: same jobs, same engine -> every partitioning from cache,
    # only the (cheap) downstream stages re-run.
    warm_workers = WORKER_COUNTS[-1]
    engine = engines[warm_workers]
    start = time.perf_counter()
    warm_batch = engine.run_batch(jobs)
    warm_time = time.perf_counter() - start
    cold_time = engine_times[warm_workers]
    print(f"  warm cache:    {warm_time:8.4f} s   "
          f"({warm_time / cold_time * 100:4.1f}% of cold)")
    assert warm_batch.ok
    assert all(report.cached_partition for report in warm_batch)
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict:
        assert warm_time < 0.05 * cold_time, (
            f"warm batch took {warm_time:.3f} s, over 5% of the cold {cold_time:.3f} s"
        )

    # Cross-process cache reuse: a brand new engine reading the same disk
    # cache must also skip every solve.
    fresh = FlowEngine(workers=0, cache_dir=tmp_path / f"cache-{warm_workers}")
    disk_batch = fresh.run_batch(jobs)
    assert disk_batch.ok
    assert all(report.cached_partition for report in disk_batch)

    record(
        "flow_scaling",
        batch_size=len(jobs),
        serial_seconds=serial_time,
        serial_flows_per_sec=len(jobs) / serial_time if serial_time else 0.0,
        engine_seconds_by_workers={str(w): t for w, t in engine_times.items()},
        warm_seconds=warm_time,
        warm_fraction_of_cold=warm_time / cold_time if cold_time else 0.0,
        stage_stats=engine.stage_stats,
        cache_stats=engine.stats.snapshot(),
    )

    cpu_count = os.cpu_count() or 1
    if strict and cpu_count >= 4 and 4 in engine_times:
        assert serial_time / engine_times[4] >= 2.0, (
            f"4-worker speedup {serial_time / engine_times[4]:.2f}x < 2x "
            f"on a {cpu_count}-CPU machine"
        )
