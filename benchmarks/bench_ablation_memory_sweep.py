"""A5 — on-board memory-size sweep: how much memory would FDH need?

Table 1's negative result is a consequence of the 64K-word memory: it caps a
run at k = 2,048 blocks, far below the ~40k blocks needed to absorb the
``N*CT`` reconfiguration cost of every batch.  This ablation re-runs the
fission analysis and both strategies while sweeping the memory size, showing

* k growing linearly with the memory,
* the FDH deficit shrinking and finally flipping to a win once a single batch
  is large enough, and
* IDH being almost insensitive to the memory size (its reconfiguration cost is
  paid once regardless).
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.arch import paper_case_study_system
from repro.fission import SequencingStrategy, analyse_fission, compare_static_vs_rtr, rtr_timing_spec
from repro.units import kilowords

MEMORY_SIZES_KWORDS = [64, 256, 1024, 4096, 16384]
WORKLOAD_BLOCKS = 245_760


def test_memory_size_sweep(benchmark, case_study):
    def run():
        rows = []
        for kwords in MEMORY_SIZES_KWORDS:
            words = kilowords(kwords)
            system = paper_case_study_system(memory_words=words)
            analysis = analyse_fission(case_study.partitioning, words)
            spec = rtr_timing_spec(case_study.partitioning, analysis)
            fdh = compare_static_vs_rtr(
                SequencingStrategy.FDH, case_study.static_spec, spec, WORKLOAD_BLOCKS, system
            )
            idh = compare_static_vs_rtr(
                SequencingStrategy.IDH, case_study.static_spec, spec, WORKLOAD_BLOCKS, system
            )
            rows.append(
                {
                    "memory_kwords": kwords,
                    "k": analysis.computations_per_run,
                    "fdh_improvement": fdh.improvement,
                    "idh_improvement": idh.improvement,
                }
            )
        return rows

    rows = benchmark(run)

    print()
    for row in rows:
        print(
            f"  {row['memory_kwords']:>6}K words: k = {row['k']:>7}, "
            f"FDH {row['fdh_improvement'] * 100:6.1f}%, IDH {row['idh_improvement'] * 100:5.1f}%"
        )

    # k grows linearly with the memory (32 words per block computation).
    for row in rows:
        assert row["k"] == kilowords(row["memory_kwords"]) // 32
    # FDH improves monotonically with memory and eventually wins.
    fdh_improvements = [row["fdh_improvement"] for row in rows]
    assert fdh_improvements == sorted(fdh_improvements)
    assert fdh_improvements[0] < 0          # the paper's 64K case: FDH loses
    assert fdh_improvements[-1] > 0         # with enough memory FDH wins too
    # IDH is nearly insensitive to the memory size (within a couple of points).
    idh_improvements = [row["idh_improvement"] for row in rows]
    assert max(idh_improvements) - min(idh_improvements) < 0.05

    record(
        "ablation_memory_sweep",
        mean_seconds=benchmark_seconds(benchmark),
        sweep_points=len(rows),
        fdh_improvement_span=[fdh_improvements[0], fdh_improvements[-1]],
    )
