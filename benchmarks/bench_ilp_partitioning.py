"""E3 — ILP temporal partitioning of the 32-task DCT graph.

Times the complete partitioner run (preprocessing lower bound, model build,
MILP solve, extraction) and asserts the paper's reported result: three
temporal partitions with the 16 T1 tasks in partition 1 and the T2 tasks
split 8/8, for a minimum computation latency of 8,440 ns.  The paper reports
a 3.5 s CPLEX solve for the same instance.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.partition import IlpTemporalPartitioner, assert_valid
from repro.units import ns


def test_ilp_partitioning_dct(benchmark, dct_problem, dct_graph):
    def run():
        return IlpTemporalPartitioner().partition(dct_problem)

    result = benchmark(run)
    assert_valid(dct_problem, result)

    print()
    print(result.describe())

    assert result.partition_count == 3
    assert sorted(info.task_count for info in result.partitions) == [8, 8, 16]
    first_partition_types = {
        dct_graph.task(name).task_type for name in result.tasks_in_partition(1)
    }
    assert first_partition_types == {"T1"}
    assert abs(result.computation_latency - ns(8440)) < 1e-12

    record(
        "ilp_partitioning",
        scipy_mean_seconds=benchmark_seconds(benchmark),
        partitions=result.partition_count,
        computation_latency_ns=result.computation_latency * 1e9,
        solve_time_seconds=result.solve_time,
    )


def test_ilp_partitioning_branch_and_bound_backend(benchmark, dct_problem):
    """The library's own branch-and-bound reaches the same optimum (slower)."""

    def run():
        return IlpTemporalPartitioner(backend="branch-and-bound").partition(dct_problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.partition_count == 3
    assert abs(result.computation_latency - ns(8440)) < 1e-12

    record(
        "ilp_partitioning",
        branch_and_bound_seconds=benchmark_seconds(benchmark),
        branch_and_bound_solve_seconds=result.solve_time,
    )
