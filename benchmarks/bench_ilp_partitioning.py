"""E3 — ILP temporal partitioning: the DCT case study and solver hot path.

Three measurements:

* the complete scipy-backed partitioner run on the 32-task DCT graph
  (preprocessing lower bound, model build, MILP solve, extraction), with the
  paper's reported result asserted (3 partitions, 8,440 ns);
* the same instance through the library's own branch-and-bound backend;
* the accelerated built-in solver stack (portfolio: heuristic ladder +
  optimality certificate + warm-started, symmetry-broken, cardinality-cut
  branch-and-bound) against the pre-acceleration reference configuration
  (plain formulation, cold start) over the whole builtin workload set, with
  objectives asserted identical and the cold-solve speedup recorded.

Run standalone (``python benchmarks/bench_ilp_partitioning.py [--smoke]``)
or under pytest.  Environment knobs:

* ``REPRO_BENCH_STRICT=0`` — skip the hard >= 3x speedup assertion (CI
  smoke runners gate against committed baselines via
  ``benchmarks/check_regression.py`` instead);
* ``REPRO_BENCH_JSON_DIR`` — where ``BENCH_ilp_partitioning.json`` lands.
"""

from __future__ import annotations

import os
import sys
import time

from bench_utils import benchmark_seconds, record

from repro.partition import (
    FormulationOptions,
    IlpTemporalPartitioner,
    PartitionProblem,
    PortfolioPartitioner,
    assert_valid,
)
from repro.synth import DesignFlow
from repro.taskgraph import partition_lower_bound
from repro.units import ns
from repro.workloads import get_workload

#: The builtin (non-verify) workload set the acceleration is measured on.
BUILTIN_WORKLOADS = (
    "fir_filterbank",
    "jpeg_dct",
    "matmul_pipeline",
    "random_layered",
    "wavelet_pyramid",
)


def test_ilp_partitioning_dct(benchmark, dct_problem, dct_graph):
    def run():
        return IlpTemporalPartitioner().partition(dct_problem)

    result = benchmark(run)
    assert_valid(dct_problem, result)

    print()
    print(result.describe())

    assert result.partition_count == 3
    assert sorted(info.task_count for info in result.partitions) == [8, 8, 16]
    first_partition_types = {
        dct_graph.task(name).task_type for name in result.tasks_in_partition(1)
    }
    assert first_partition_types == {"T1"}
    assert abs(result.computation_latency - ns(8440)) < 1e-12

    record(
        "ilp_partitioning",
        scipy_mean_seconds=benchmark_seconds(benchmark),
        partitions=result.partition_count,
        computation_latency_ns=result.computation_latency * 1e9,
        solve_time_seconds=result.solve_time,
    )


def test_ilp_partitioning_branch_and_bound_backend(benchmark, dct_problem):
    """The library's own branch-and-bound reaches the same optimum (slower)."""

    def run():
        return IlpTemporalPartitioner(backend="branch-and-bound").partition(dct_problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.partition_count == 3
    assert abs(result.computation_latency - ns(8440)) < 1e-12

    record(
        "ilp_partitioning",
        branch_and_bound_seconds=benchmark_seconds(benchmark),
        branch_and_bound_solve_seconds=result.solve_time,
    )


def _builtin_problems():
    problems = []
    for name in BUILTIN_WORKLOADS:
        workload = get_workload(name)
        graph = workload.build_graph()
        system = workload.default_system()
        estimated = DesignFlow(system, workload.flow_options()).estimate(graph)
        problems.append((name, PartitionProblem.from_system(estimated, system)))
    return problems


class _PreAccelerationProblem(PartitionProblem):
    """A problem view with the pre-acceleration preprocessing bound.

    The relax-N loop now starts from ``max(resource-sum, cardinality)``;
    before the hot-path work only the resource-sum bound existed, so the
    reference stack must pay for the infeasibility proofs the cardinality
    bound now skips.  Restoring the old bound here keeps the comparison an
    honest before/after of the whole solver stack.
    """

    def minimum_partitions(self) -> int:
        return partition_lower_bound(self.graph, self.resource_capacity)


def _reference_partitioner():
    """The pre-acceleration built-in configuration.

    Plain formulation (no symmetry breaking, no cardinality cuts), no
    heuristic incumbent — each bound is solved cold, exactly as the solver
    ran before the hot-path work.
    """
    return IlpTemporalPartitioner(
        backend="branch-and-bound",
        options=FormulationOptions(),
        warm_start=False,
    )


def test_accelerated_stack_vs_reference():
    """Cold-solve the builtin set with both stacks; identical objectives."""
    problems = _builtin_problems()

    start = time.perf_counter()
    reference_results = {}
    for name, problem in problems:
        pre_pr = _PreAccelerationProblem(
            graph=problem.graph,
            resource_capacity=problem.resource_capacity,
            memory_words=problem.memory_words,
            reconfiguration_time=problem.reconfiguration_time,
            max_partitions=problem.max_partitions,
        )
        reference_results[name] = _reference_partitioner().partition(pre_pr)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    accel_results = {}
    accel_methods = {}
    for name, problem in problems:
        portfolio = PortfolioPartitioner(ilp_backend="branch-and-bound")
        accel_results[name] = portfolio.partition(problem)
        accel_methods[name] = accel_results[name].method
    accel_seconds = time.perf_counter() - start

    print()
    print(f"cold solve of {len(problems)} builtin workloads:")
    print(f"  reference stack:   {reference_seconds:8.2f} s")
    print(f"  accelerated stack: {accel_seconds:8.2f} s   "
          f"({reference_seconds / accel_seconds:4.2f}x)")

    objective_diffs = {}
    for name, problem in problems:
        reference = reference_results[name]
        accelerated = accel_results[name]
        assert_valid(problem, accelerated)
        assert accelerated.partition_count == reference.partition_count, name
        objective_diffs[name] = abs(
            accelerated.total_latency - reference.total_latency
        )
        assert objective_diffs[name] == 0.0, (
            f"{name}: accelerated objective {accelerated.total_latency!r} != "
            f"reference {reference.total_latency!r}"
        )
        # Same problem, same code path -> byte-identical assignment.
        rerun = PortfolioPartitioner(ilp_backend="branch-and-bound").partition(problem)
        assert rerun.assignment == accelerated.assignment, name
        assert rerun.method == accelerated.method, name
        print(f"  {name:16s} latency {accelerated.total_latency * 1e3:9.4f} ms  "
              f"{accel_methods[name]}")

    speedup = reference_seconds / accel_seconds if accel_seconds else 0.0
    record(
        "ilp_partitioning",
        builtin_workloads=list(BUILTIN_WORKLOADS),
        reference_total_seconds=reference_seconds,
        accel_total_seconds=accel_seconds,
        accel_speedup_vs_reference=speedup,
        accel_jobs_per_sec=(
            len(problems) / accel_seconds if accel_seconds else 0.0
        ),
        accel_methods=accel_methods,
        max_objective_diff=max(objective_diffs.values()),
    )

    if os.environ.get("REPRO_BENCH_STRICT", "1") != "0":
        assert speedup >= 3.0, (
            f"accelerated stack is only {speedup:.2f}x faster than the "
            "reference configuration; the hot-path acceptance floor is 3x"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="no strict speedup assertion (CI gates against "
                             "committed baselines instead)")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
