"""Huge-graph scaling — the multilevel pre-partitioner at 10k-100k nodes.

Runs the **full design flow** (estimation, partitioning, memory mapping,
fission, timing) over the ``random_layered_10k/50k/100k`` workload shapes
with the multilevel pre-partitioner and reports nodes/second per tier, then
times the flat list scheduler against the multilevel partitioner on the
largest flat-solvable tier and asserts the multilevel side wins by at least
10x.  Every flow is built twice and the two designs must be bit-identical
(same :func:`~repro.verify.oracles.design_fingerprint`): determinism at
scale is part of the claim, not an afterthought.

Environment knobs for constrained CI runners:

* ``REPRO_BENCH_HUGE_TIERS`` — comma-separated tier node counts
  (default ``10000,50000,100000``);
* ``REPRO_BENCH_HUGE_FLAT`` — node count of the flat-vs-multilevel
  comparison tier (default ``10000``, where the flat list scheduler needs
  minutes; ``0`` disables the comparison);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard >= 10x
  speedup assertion (for tiny smoke budgets).

Run standalone (``python benchmarks/bench_huge_graphs.py [--smoke]``) or
under pytest; ``--smoke`` presets a single 2000-node tier with no strict
assertions — small enough for CI, large enough that coarsening genuinely
runs (2000 tasks >> the 48-task coarse target).
"""

from __future__ import annotations

import os
import sys
import time

from bench_utils import record

from repro.arch.catalog import generic_system
from repro.partition import (
    ListTemporalPartitioner,
    MultilevelPartitioner,
    PartitionProblem,
    validate_partitioning,
)
from repro.synth.flow import DesignFlow, FlowOptions
from repro.taskgraph.builders import random_dsp_task_graph
from repro.units import ms
from repro.verify.oracles import design_fingerprint

TIERS = [
    int(item)
    for item in os.environ.get(
        "REPRO_BENCH_HUGE_TIERS", "10000,50000,100000"
    ).split(",")
]
FLAT_TIER = int(os.environ.get("REPRO_BENCH_HUGE_FLAT", "10000"))


def _tier_graph(task_count: int):
    """The tier's graph: the ``random_layered_<N>`` workload shape."""
    return random_dsp_task_graph(
        task_count=task_count,
        seed=0,
        max_level_width=24,
        edge_probability=0.08,
        name=f"bench_huge_{task_count}",
    )


def _tier_system(task_count: int):
    """The tier's board, capacity scaled with size (20 CLBs/task) like the
    registered huge workloads (10k -> 200k CLBs, ..., 100k -> 2M CLBs)."""
    return generic_system(
        clb_capacity=20 * task_count,
        memory_words=1 << 20,
        reconfiguration_time=ms(5),
    )


def test_huge_tier_full_flow_throughput():
    """Full multilevel flow per tier: nodes/sec, validity, determinism."""
    print()
    nodes_per_sec = {}
    for task_count in TIERS:
        graph = _tier_graph(task_count)
        system = _tier_system(task_count)
        flow = DesignFlow(system, FlowOptions(partitioner="multilevel"))

        start = time.perf_counter()
        design = flow.build(graph)
        elapsed = time.perf_counter() - start
        nodes_per_sec[task_count] = task_count / elapsed

        problem = PartitionProblem.from_system(graph, system)
        validation = validate_partitioning(problem, design.partitioning)
        assert validation.is_valid, validation.violations

        # Same graph, fresh flow: the design must be bit-identical.
        again = DesignFlow(
            system, FlowOptions(partitioner="multilevel")
        ).build(graph)
        assert design_fingerprint(again) == design_fingerprint(design), (
            f"{task_count}-node flow is not deterministic"
        )

        print(
            f"  {task_count:>7,} nodes: {elapsed:7.2f} s full flow "
            f"({nodes_per_sec[task_count]:8.0f} nodes/s, "
            f"{design.partition_count} partitions)"
        )

    largest = max(TIERS)
    record(
        "huge_graphs",
        tiers=sorted(TIERS),
        nodes_per_sec_by_tier={str(n): nodes_per_sec[n] for n in sorted(TIERS)},
        largest_tier=largest,
        largest_tier_nodes_per_sec=nodes_per_sec[largest],
    )


def test_multilevel_vs_flat_speedup():
    """The multilevel partitioner must beat the flat list scheduler >= 10x."""
    if FLAT_TIER <= 0:
        import pytest

        pytest.skip("flat comparison disabled (REPRO_BENCH_HUGE_FLAT=0)")
    graph = _tier_graph(FLAT_TIER)
    problem = PartitionProblem.from_system(graph, _tier_system(FLAT_TIER))

    start = time.perf_counter()
    multilevel = MultilevelPartitioner().partition(problem)
    multilevel_seconds = time.perf_counter() - start

    start = time.perf_counter()
    flat = ListTemporalPartitioner().partition(problem)
    flat_seconds = time.perf_counter() - start

    speedup = flat_seconds / multilevel_seconds if multilevel_seconds else 0.0
    print()
    print(
        f"  {FLAT_TIER:>7,} nodes: multilevel {multilevel_seconds:7.2f} s "
        f"({multilevel.partition_count}p)  flat list {flat_seconds:7.2f} s "
        f"({flat.partition_count}p)  speedup {speedup:5.1f}x"
    )

    for result in (multilevel, flat):
        validation = validate_partitioning(problem, result)
        assert validation.is_valid, validation.violations

    record(
        "huge_graphs",
        flat_tier=FLAT_TIER,
        flat_seconds=flat_seconds,
        multilevel_seconds=multilevel_seconds,
        multilevel_speedup_vs_flat=speedup,
    )

    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict:
        assert speedup >= 10.0, (
            f"multilevel only {speedup:.1f}x faster than the flat list "
            f"scheduler at {FLAT_TIER} nodes (claimed >= 10x)"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single 2000-node tier, no strict assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_HUGE_TIERS", "2000")
        os.environ.setdefault("REPRO_BENCH_HUGE_FLAT", "2000")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
