"""Substrate performance benchmarks: estimator, simulator, codec, ILP layer.

These are not paper experiments; they track the performance of the library's
own building blocks so that regressions in the substrates (which every
experiment runs through) are visible.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.arch import xc4044
from repro.dfg import vector_product_dfg
from repro.fission import SequencingStrategy
from repro.hls import TaskEstimator
from repro.ilp import Model, linear_sum, solve
from repro.jpeg import JpegLikeCodec, build_dct_task_graph, synthetic_image
from repro.simulate import RtrExecutionSimulator, StaticExecutionSimulator
from repro.taskgraph import random_dsp_task_graph
from repro.units import ns


def test_hls_estimator_throughput(benchmark):
    """Estimate a 4-element vector product datapath (the T2 task shape)."""
    estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
    dfg = vector_product_dfg(4, input_width=16, coefficient_width=17, name="T2")
    estimate = benchmark(lambda: estimator.estimate_dfg(dfg, env_io_words=5))
    assert estimate.clbs > 0
    record("substrates", hls_estimate_seconds=benchmark_seconds(benchmark))


def test_rtr_simulator_largest_workload(benchmark, case_study):
    """Simulate the full 245,760-block IDH run event by event."""
    simulator = RtrExecutionSimulator(case_study.system)
    result = benchmark(
        lambda: simulator.simulate(case_study.rtr_spec, SequencingStrategy.IDH, 245_760)
    )
    assert result.runs == 120
    record("substrates", rtr_simulation_seconds=benchmark_seconds(benchmark))


def test_static_simulator_largest_workload(benchmark, case_study):
    simulator = StaticExecutionSimulator(case_study.system)
    result = benchmark(lambda: simulator.simulate(case_study.static_spec, 245_760))
    assert result.invocations == 245_760


def test_jpeg_codec_encode(benchmark):
    """Encode a 128x128 synthetic image with 4x4 blocks (1024 blocks)."""
    codec = JpegLikeCodec(block_size=4, quality=75)
    image = synthetic_image(128, 128, seed=0)
    encoded = benchmark(lambda: codec.encode(image))
    assert encoded.block_count == 1024
    record("substrates", jpeg_encode_seconds=benchmark_seconds(benchmark))


def test_jpeg_codec_roundtrip(benchmark):
    codec = JpegLikeCodec(block_size=8, quality=75)
    image = synthetic_image(64, 64, seed=1)
    psnr = benchmark(lambda: codec.roundtrip_psnr(image))
    assert psnr > 25.0


def test_dct_task_graph_build(benchmark):
    graph = benchmark(lambda: build_dct_task_graph(attach_dfgs=True))
    assert len(graph) == 32


def test_random_task_graph_generation(benchmark):
    graph = benchmark(lambda: random_dsp_task_graph(task_count=200, seed=9))
    assert len(graph) == 200


def test_milp_solver_medium_instance(benchmark):
    """A 60-binary-variable assignment-style MILP (larger than the DCT model's core)."""

    def build_and_solve():
        model = Model("assignment")
        items = 20
        bins = 3
        y = {
            (i, b): model.add_binary(f"y[{i},{b}]")
            for i in range(items)
            for b in range(bins)
        }
        for i in range(items):
            model.add_constraint(linear_sum(y[i, b] for b in range(bins)) == 1)
        for b in range(bins):
            model.add_constraint(
                linear_sum((i % 7 + 1) * y[i, b] for i in range(items)) <= 30
            )
        load = model.add_continuous("load", 0, 1000)
        for b in range(bins):
            model.add_constraint(
                load >= linear_sum((i % 5 + 1) * y[i, b] for i in range(items))
            )
        model.minimize(load)
        return solve(model)

    solution = benchmark(build_and_solve)
    assert solution.is_optimal
    record("substrates", milp_medium_seconds=benchmark_seconds(benchmark))
