"""A1 — address-generation ablation: power-of-two rounding vs. multiplier.

Section 3 rounds each partition's memory block up to a power of two so that
address generation is a concatenation instead of a multiplication, trading
wasted memory (and hence a possibly smaller k) for a smaller/faster address
generator.  The bench quantifies both sides of the trade for the DCT's
partitions.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.fission import analyse_fission
from repro.memmap import addressing_tradeoff, build_memory_map


def test_addressing_tradeoff(benchmark, case_study):
    def run():
        plain = analyse_fission(
            case_study.partitioning, case_study.system.memory_capacity_words,
            round_blocks_to_power_of_two=False,
        )
        rounded = analyse_fission(
            case_study.partitioning, case_study.system.memory_capacity_words,
            round_blocks_to_power_of_two=True,
        )
        memory_map = build_memory_map(case_study.partitioning)
        trades = {
            index: addressing_tradeoff(memory_map.block(index))
            for index in memory_map.partition_indices
        }
        return plain, rounded, trades

    plain, rounded, trades = benchmark(run)

    print()
    for index, trade in trades.items():
        print(
            f"  P{index}: block {trade['natural_words']}w -> {trade['rounded_words']}w "
            f"(waste {trade['wasted_words']}w); address generator "
            f"{trade['concatenation_area_clbs']} CLBs (concat) vs "
            f"{trade['multiplier_area_clbs']} CLBs (multiplier)"
        )
    print(f"  k without rounding: {plain.computations_per_run}, with rounding: "
          f"{rounded.computations_per_run}")

    # The concatenation generator is always smaller and faster.
    for trade in trades.values():
        assert trade["concatenation_area_clbs"] < trade["multiplier_area_clbs"]
        assert trade["concatenation_delay"] < trade["multiplier_delay"]
    # Rounding can only shrink k (here it does not, because the limiting
    # 32-word block is already a power of two).
    assert rounded.computations_per_run <= plain.computations_per_run
    assert rounded.computations_per_run == 2048

    record(
        "ablation_addressing",
        mean_seconds=benchmark_seconds(benchmark),
        k_plain=plain.computations_per_run,
        k_rounded=rounded.computations_per_run,
    )
