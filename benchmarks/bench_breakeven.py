"""E6 — breakeven analyses for the FDH strategy.

The paper remarks that "roughly 42,553 blocks of DCT [would have to] be
computed in each temporal partition" for the reconfiguration overhead to be
absorbed, but the 64K memory caps a run at k = 2,048 blocks, so FDH never wins
on this board.  The bench computes

* the reconfiguration-absorption point (blocks per run whose execution time
  equals ``N*CT``), which should land in the paper's ballpark, and
* the FDH and IDH workload breakeven points against the static design.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import paper_constants as paper
from repro.fission import SequencingStrategy, breakeven_computations, reconfiguration_absorption_point


def test_fdh_absorption_point(benchmark, case_study):
    blocks = benchmark(
        lambda: reconfiguration_absorption_point(case_study.rtr_spec, case_study.system)
    )
    print()
    print(f"  reconfiguration absorbed at {blocks} blocks/run "
          f"(paper: ~{paper.FDH_BREAKEVEN_BLOCKS}); memory caps a run at k="
          f"{case_study.computations_per_run}")
    assert 0.5 * paper.FDH_BREAKEVEN_BLOCKS < blocks < 1.5 * paper.FDH_BREAKEVEN_BLOCKS
    assert blocks > case_study.computations_per_run  # why FDH cannot win

    record(
        "breakeven",
        absorption_mean_seconds=benchmark_seconds(benchmark),
        absorption_blocks=blocks,
    )


def test_workload_breakeven_points(benchmark, case_study):
    def run():
        fdh = breakeven_computations(
            SequencingStrategy.FDH,
            case_study.static_spec,
            case_study.rtr_spec,
            case_study.system,
            upper_bound=1 << 26,
        )
        idh = breakeven_computations(
            SequencingStrategy.IDH,
            case_study.static_spec,
            case_study.rtr_spec,
            case_study.system,
        )
        return fdh, idh

    fdh_breakeven, idh_breakeven = benchmark(run)
    print()
    print(f"  FDH breakeven workload: {fdh_breakeven} (None = never wins)")
    print(f"  IDH breakeven workload: {idh_breakeven} blocks")
    assert fdh_breakeven is None
    assert idh_breakeven is not None
    assert idh_breakeven < paper.LARGEST_WORKLOAD_BLOCKS

    record(
        "breakeven",
        breakeven_mean_seconds=benchmark_seconds(benchmark),
        fdh_breakeven_blocks=fdh_breakeven,
        idh_breakeven_blocks=idh_breakeven,
    )
