"""E7 — the XC6000 conjecture: CT = 500 us raises the IDH improvement to ~47 %.

The paper's closing remark re-evaluates the largest workload on a device with
a 500 us reconfiguration overhead and predicts a 47 % improvement.  The bench
performs the same substitution (only the reconfiguration time changes) and
checks the resulting improvement.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import paper_constants as paper
from repro.experiments.table2 import xc6000_conjecture


def test_xc6000_conjecture(benchmark, case_study):
    improvement = benchmark(lambda: xc6000_conjecture(case_study))
    print()
    print(
        f"  IDH improvement at CT=500us: {improvement * 100:.1f}% "
        f"(paper: {paper.XC6000_IMPROVEMENT * 100:.0f}%)"
    )
    assert abs(improvement - paper.XC6000_IMPROVEMENT) <= paper.XC6000_IMPROVEMENT_TOLERANCE

    record(
        "xc6000_conjecture",
        mean_seconds=benchmark_seconds(benchmark),
        improvement_fraction=improvement,
    )
