"""A3 — reconfiguration-time sweep: how the IDH advantage depends on CT.

Sweeps the reconfiguration overhead from the Time-Multiplexed-FPGA regime
(100 ns) to the WildForce regime (100 ms) for the largest workload, showing
the improvement rising monotonically from the Table-2 value (~42 %) towards
the compute-only bound (~47 %), and collapsing for small workloads when CT is
large — the core message of Section 2.2.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import reconfiguration_sweep
from repro.fission import SequencingStrategy, compare_static_vs_rtr
from repro.units import ms, ns, us

SWEEP = [ms(100), ms(10), ms(1), us(500), us(50), us(5), ns(100)]


def test_reconfiguration_time_sweep(benchmark, case_study):
    rows = benchmark(lambda: reconfiguration_sweep(case_study, SWEEP))

    print()
    for row in rows:
        print(
            f"  CT = {row['reconfiguration_time'] * 1e6:10.1f} us -> "
            f"improvement {row['improvement'] * 100:5.1f}%"
        )
    improvements = [row["improvement"] for row in rows]
    assert improvements == sorted(improvements)
    assert improvements[0] > 0.35          # 100 ms: the Table-2 regime
    assert improvements[-1] < 0.50         # bounded by the compute-only gap

    record(
        "ablation_ct_sweep",
        mean_seconds=benchmark_seconds(benchmark),
        sweep_points=len(rows),
        improvement_min=improvements[0],
        improvement_max=improvements[-1],
    )


def test_small_workload_sensitivity_to_ct(benchmark, case_study):
    """With CT = 100 ms a 2048-block image loses badly; at 500 us it wins."""

    def run():
        slow = compare_static_vs_rtr(
            SequencingStrategy.IDH, case_study.static_spec, case_study.rtr_spec,
            2048, case_study.system,
        )
        fast_system = case_study.system.with_reconfiguration_time(us(500))
        fast = compare_static_vs_rtr(
            SequencingStrategy.IDH, case_study.static_spec, case_study.rtr_spec,
            2048, fast_system,
        )
        return slow, fast

    slow, fast = benchmark(run)
    print()
    print(f"  2048 blocks @ CT=100ms: improvement {slow.improvement * 100:.1f}%")
    print(f"  2048 blocks @ CT=500us: improvement {fast.improvement * 100:.1f}%")
    assert not slow.rtr_wins
    assert fast.rtr_wins
