"""Formulation ablation: linearisation / ordering / delay-constraint variants.

DESIGN.md calls out three formulation choices (aggregated vs. pairwise
linearisation of Eqs. 4-5, the paper's Eq. 2 order constraints vs. an
aggregated position form, and path enumeration vs. a big-M chain form for
Eq. 7).  This bench solves the DCT instance under each variant, checks they
all reach the same optimum, and reports model sizes and solve times.
"""

from __future__ import annotations

import time

from bench_utils import record

from repro.partition import FormulationOptions, IlpTemporalPartitioner, TemporalPartitioningFormulation
from repro.units import ns

VARIANTS = {
    "paper+aggregated+path": FormulationOptions(),
    "paper+pairwise+path": FormulationOptions(linkage_form="pairwise"),
    "position+aggregated+path": FormulationOptions(order_form="position"),
    "paper+aggregated+chain": FormulationOptions(delay_form="chain"),
}


def test_formulation_variants(benchmark, dct_problem):
    def run():
        rows = {}
        for label, options in VARIANTS.items():
            stats = TemporalPartitioningFormulation(dct_problem, 3, options).statistics()
            start = time.perf_counter()
            result = IlpTemporalPartitioner(options=options).partition(dct_problem)
            rows[label] = {
                "latency_ns": result.computation_latency * 1e9,
                "variables": stats["variables"],
                "constraints": stats["constraints"],
                "solve_seconds": time.perf_counter() - start,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for label, row in rows.items():
        print(
            f"  {label:28s}: {row['variables']:4d} vars, {row['constraints']:5d} cons, "
            f"{row['solve_seconds']:.2f} s, latency {row['latency_ns']:.0f} ns"
        )
    latencies = {round(row["latency_ns"], 3) for row in rows.values()}
    assert latencies == {round(ns(8440) * 1e9, 3)}
    # The aggregated linearisation produces a smaller model than the pairwise one.
    assert (
        rows["paper+aggregated+path"]["constraints"]
        < rows["paper+pairwise+path"]["constraints"]
    )

    record(
        "ablation_formulation",
        solve_seconds_by_variant={
            label: row["solve_seconds"] for label, row in rows.items()
        },
        constraints_by_variant={
            label: row["constraints"] for label, row in rows.items()
        },
    )
