"""Stage-pipeline cache throughput — cold vs. axis-warm points/sec.

The content-addressed stage pipeline is what makes explore neighbourhoods
cheap: a CT-only neighbour shares the estimate, partition, memory-map,
fission and timing artifacts with the points already evaluated, so a warm
evaluation re-runs nothing but rehydration, assembly and objectives.

This bench measures exactly that claim on the JPEG-DCT workload:

* **cold** — every point of a reconfiguration-time sweep evaluated on its
  own fresh :class:`~repro.synth.FlowEngine` (nothing shared, every point
  pays estimation + the ILP solve);
* **axis-warm** — the same points evaluated on one engine that has already
  seen a single base point differing only in CT; the pipeline must serve
  every upstream stage from cache (zero partition-cache misses, zero HLS
  estimator runs), and the points/sec rate must be at least 5x cold.

Run standalone (``python benchmarks/bench_stage_cache.py [--smoke]``) or
under pytest.  Environment knobs:

* ``REPRO_BENCH_STAGE_POINTS`` — CT-axis points to evaluate (default 12);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard 5x
  speedup assertion (for noisy CI runners).
"""

from __future__ import annotations

import os
import sys
import time

from bench_utils import record

from repro.runtime import EngineConfig, PartitionEngine
from repro.synth import FlowEngine, workload_flow_jobs
from repro.units import ms

POINTS = int(os.environ.get("REPRO_BENCH_STAGE_POINTS", "12"))
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: The CT axis of the measured neighbourhood (the warm-up base point uses a
#: CT deliberately outside this sweep, so every measured point is *new*).
CT_VALUES = [ms(2 + index) for index in range(POINTS)]
BASE_CT = ms(1)


def _jobs(ct_values):
    return workload_flow_jobs(names=["jpeg_dct"], ct_values=list(ct_values))


def test_axis_warm_points_per_sec_vs_cold():
    # Cold: a fresh engine per point — no sharing of any stage artifact.
    cold_start = time.perf_counter()
    for ct in CT_VALUES:
        engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        batch = engine.run_batch(_jobs([ct]))
        assert batch.ok, batch.describe(failures_only=True)
    cold_seconds = time.perf_counter() - cold_start
    cold_rate = len(CT_VALUES) / cold_seconds

    # Axis-warm: one engine, warmed by a single base point that differs
    # from every measured point only along the CT axis.
    engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
    warmup = engine.run_batch(_jobs([BASE_CT]))
    assert warmup.ok, warmup.describe(failures_only=True)
    misses_before = engine.stats.cache.misses
    estimates_before = engine.stage_stats["estimate"]["runs"]

    warm_start = time.perf_counter()
    batch = engine.run_batch(_jobs(CT_VALUES))
    warm_seconds = time.perf_counter() - warm_start
    warm_rate = len(CT_VALUES) / warm_seconds
    assert batch.ok, batch.describe(failures_only=True)

    # The delta-evaluation guarantees: zero partition solves, zero HLS
    # estimations — the whole CT axis is served by the stage caches.
    partition_misses = engine.stats.cache.misses - misses_before
    estimator_runs = engine.stage_stats["estimate"]["runs"] - estimates_before
    assert partition_misses == 0, (
        f"warm CT-only neighbourhood hit the solver {partition_misses} time(s)"
    )
    assert estimator_runs == 0, (
        f"warm CT-only neighbourhood ran the estimator {estimator_runs} time(s)"
    )
    for report in batch:
        assert report.cached_partition, report.row()["stage_sources"]

    speedup = warm_rate / cold_rate if cold_rate else float("inf")
    print()
    print(f"stage-cache throughput over {len(CT_VALUES)} CT-axis points:")
    print(f"  cold:      {cold_seconds:8.2f} s  ({cold_rate:8.1f} points/s)")
    print(f"  axis-warm: {warm_seconds:8.2f} s  ({warm_rate:8.1f} points/s, "
          f"{speedup:.1f}x cold)")
    print(f"  {batch.describe_stage_cache()}")

    record(
        "stage_cache",
        points=len(CT_VALUES),
        cold_seconds=cold_seconds,
        cold_points_per_sec=cold_rate,
        warm_seconds=warm_seconds,
        warm_points_per_sec=warm_rate,
        speedup=speedup,
        warm_partition_cache_misses=partition_misses,
        warm_estimator_runs=estimator_runs,
        stage_stats=engine.stage_stats,
        engine_stats=engine.stats.snapshot(),
    )

    if STRICT:
        assert speedup >= 5.0, (
            f"axis-warm evaluation reached only {speedup:.1f}x the cold rate; "
            "expected at least 5x"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep, no strict speedup assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_STAGE_POINTS", "4")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
