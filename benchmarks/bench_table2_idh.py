"""Table 2 — DCT execution time under the IDH strategy (static vs. RTR).

Regenerates every row of the paper's Table 2 and the two headline claims:

* the IDH improvement grows with the image size;
* at 245,760 blocks the RTR design is ~42 % faster than the static design.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import paper_constants as paper
from repro.experiments import reproduce_table2
from repro.experiments.table2 import paper_comparison


def test_table2_idh(benchmark, case_study):
    result = benchmark(lambda: reproduce_table2(case_study))

    print()
    print(result.formatted())
    print()
    for row in paper_comparison(result):
        print(f"  {row['quantity']}: paper={row['paper']}  measured={row['measured']}")

    assert len(result.rows) == 8
    assert result.improvements_monotonic
    assert result.rows[0]["blocks"] == paper.LARGEST_WORKLOAD_BLOCKS
    assert abs(result.improvement_at_largest - paper.IDH_IMPROVEMENT_AT_LARGEST) <= (
        paper.IDH_IMPROVEMENT_TOLERANCE
    )
    # Small images lose: the 300 ms of reconfigurations is not amortised.
    assert result.rows[-1]["improvement_fraction"] < 0

    record(
        "table2_idh",
        mean_seconds=benchmark_seconds(benchmark),
        rows=len(result.rows),
        improvement_at_largest=result.improvement_at_largest,
        xc6000_improvement=result.xc6000_improvement,
    )
