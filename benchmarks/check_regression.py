"""Gate freshly emitted ``BENCH_*.json`` reports against committed baselines.

CI runs the smoke benches, then::

    python benchmarks/check_regression.py --current bench-json

Each gated metric is compared with its value in
``benchmarks/baselines/BENCH_<name>.json``.  Dimensionless *ratio* metrics
(speedups, warm/cold fractions) are gated at 20% — they compare two runs on
the same machine, so they transfer across hardware.  Absolute throughput
metrics are machine-dependent, so they get a looser 60% floor that still
catches order-of-magnitude regressions without flaking on slower runners.

A missing baseline file or gated metric fails the check (commit a baseline
with ``--update`` after adding a gated bench).  ``--update`` rewrites the
baseline files from the current reports instead of checking.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Relative tolerance for same-machine ratio metrics ("fail on >20%
#: throughput regression").
RATIO_TOLERANCE = 0.20

#: Relative tolerance for absolute (machine-dependent) metrics.
ABSOLUTE_TOLERANCE = 0.60


@dataclass(frozen=True)
class Gate:
    """One gated metric: where it lives and which direction is a regression."""

    metric: str
    #: "min" — current must stay above baseline * (1 - tolerance);
    #: "max" — current must stay below baseline * (1 + tolerance).
    direction: str
    tolerance: float


#: Gated metrics per benchmark name (the ``BENCH_<name>.json`` stem).
GATES: Dict[str, List[Gate]] = {
    "ilp_partitioning": [
        # Same-machine before/after ratio: the headline acceleration gate.
        Gate("accel_speedup_vs_reference", "min", RATIO_TOLERANCE),
        # Absolute cold-solve throughput of the accelerated stack.
        Gate("accel_jobs_per_sec", "min", ABSOLUTE_TOLERANCE),
    ],
    "engine_scaling": [
        # Warm batches must stay a small fraction of cold ones.  The warm
        # side is a few milliseconds, so timer noise swamps a 20% band; a
        # 5x ceiling still catches any real cache regression (the fraction
        # jumps by orders of magnitude when hits stop being hits).
        Gate("warm_fraction_of_cold", "max", 4.0),
        # Absolute serial solve throughput (scipy MILP per job).
        Gate("serial_jobs_per_sec", "min", ABSOLUTE_TOLERANCE),
    ],
    "scheduler": [
        # The scheduled + merged frontier must be byte-identical to the
        # unsharded run — any divergence is a correctness bug, so zero
        # tolerance on this boolean.
        Gate("merged_equals_unsharded", "min", 0.0),
        # Absolute fleet throughput: protocol + store-streaming overhead
        # per scheduled range on a warm cache.
        Gate("ranges_per_sec", "min", ABSOLUTE_TOLERANCE),
        # Revoke + re-grant is one roundtrip of work; these are sub-ms,
        # so timer noise needs a wide band — a 10x ceiling still catches
        # the steal path picking up accidental sleeps or scans.
        Gate("steal_latency_ms_p50", "max", 9.0),
        # Wall time from SIGKILL to a fully drained schedule.  Stealing
        # makes this tens of milliseconds; if workers ever have to sit out
        # the 0.5 s lease expiry the value jumps past 10x baseline, so the
        # wide band keeps discrimination while absorbing runner noise.
        Gate("recovery_after_kill_s", "max", 9.0),
    ],
    "serve": [
        # Same-machine warm/cold ratio of the service daemon.  The warm
        # side is ~1-2 ms of pure service overhead, so timer noise moves
        # the ratio a lot; an 80% band still leaves the floor near 20x —
        # double the >= 10x dedup-by-cache claim the bench itself asserts.
        Gate("warm_speedup_vs_cold", "min", 0.80),
        # Absolute warm-path service throughput (submit + wait + result).
        Gate("warm_requests_per_sec", "min", ABSOLUTE_TOLERANCE),
        # N concurrent identical submissions must run exactly one partition
        # solve; any second solve is a dedup regression, so zero tolerance.
        Gate("concurrent_duplicate_solves", "max", 0.0),
    ],
    "explore": [
        # Warm exploration (engine caches hot) must stay a small fraction
        # of cold; like engine_scaling the warm side is milliseconds, so a
        # wide ceiling that still catches hits-stop-being-hits regressions.
        Gate("warm_fraction_of_cold", "max", 4.0),
        # A resumed exploration must run zero flow jobs — any nonzero value
        # means the run store stopped resuming, so zero tolerance.
        Gate("store_warm_flow_jobs", "max", 0.0),
    ],
    "explore_sharded": [
        # The merged N-shard frontier must be byte-identical to the
        # unsharded frontier (1.0 = identical).  Machine-independent
        # correctness, so zero tolerance.
        Gate("merged_equals_unsharded", "min", 0.0),
        # Same-machine sharded/serial throughput ratio.  On few-core CI
        # runners the 2-shard smoke ratio hovers near 1.0 with process
        # startup noise, so a 50% band — the gate catches sharding becoming
        # a multiple-x slowdown, the >= 3x claim is asserted by the bench
        # itself on >= 4-CPU hardware.
        Gate("speedup_at_max_shards", "min", 0.50),
        # Absolute serial exploration throughput over distinct solves.
        Gate("cold_points_per_sec_serial", "min", ABSOLUTE_TOLERANCE),
    ],
    "huge_graphs": [
        # Same-machine multilevel-vs-flat ratio (baseline ~19x at the 2000-
        # node smoke tier).  A 50% band is looser than RATIO_TOLERANCE on
        # purpose: the flat side is a single long measurement that wobbles
        # with allocator behaviour, and the floor it leaves (~10x) is
        # exactly the scaling claim being enforced.
        Gate("multilevel_speedup_vs_flat", "min", 0.50),
        # Absolute full-flow throughput of the largest smoke tier.
        Gate("largest_tier_nodes_per_sec", "min", ABSOLUTE_TOLERANCE),
    ],
}


def _load_metrics(path: Path) -> Dict[str, object]:
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: 'metrics' is not an object")
    return metrics


def check(current_dir: Path, baseline_dir: Path) -> int:
    failures: List[str] = []
    checked = 0
    for bench, gates in sorted(GATES.items()):
        current_path = current_dir / f"BENCH_{bench}.json"
        baseline_path = baseline_dir / f"BENCH_{bench}.json"
        if not current_path.is_file():
            failures.append(f"{bench}: missing current report {current_path}")
            continue
        if not baseline_path.is_file():
            failures.append(
                f"{bench}: missing baseline {baseline_path} "
                "(run with --update and commit it)"
            )
            continue
        current = _load_metrics(current_path)
        baseline = _load_metrics(baseline_path)
        for gate in gates:
            if gate.metric not in current:
                failures.append(f"{bench}.{gate.metric}: absent from current report")
                continue
            if gate.metric not in baseline:
                failures.append(f"{bench}.{gate.metric}: absent from baseline")
                continue
            now = float(current[gate.metric])
            ref = float(baseline[gate.metric])
            checked += 1
            if gate.direction == "min":
                floor = ref * (1.0 - gate.tolerance)
                ok = now >= floor
                bound_text = f">= {floor:.4g}"
            else:
                ceiling = ref * (1.0 + gate.tolerance)
                ok = now <= ceiling
                bound_text = f"<= {ceiling:.4g}"
            status = "ok  " if ok else "FAIL"
            print(
                f"  [{status}] {bench}.{gate.metric}: {now:.4g} "
                f"(baseline {ref:.4g}, required {bound_text})"
            )
            if not ok:
                failures.append(
                    f"{bench}.{gate.metric}: {now:.4g} regressed past "
                    f"{bound_text} (baseline {ref:.4g})"
                )
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated metrics within tolerance")
    return 0


def update(current_dir: Path, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    missing = []
    for bench in sorted(GATES):
        current_path = current_dir / f"BENCH_{bench}.json"
        if not current_path.is_file():
            missing.append(str(current_path))
            continue
        shutil.copyfile(current_path, baseline_dir / current_path.name)
        print(f"  baseline updated: {baseline_dir / current_path.name}")
    if missing:
        print(f"missing current reports: {missing}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, default=Path("."),
                        help="directory holding the freshly emitted "
                             "BENCH_*.json files (default: cwd)")
    parser.add_argument("--baselines", type=Path, default=BASELINE_DIR,
                        help="directory holding the committed baselines")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from the current reports "
                             "instead of checking")
    args = parser.parse_args(argv)
    if args.update:
        return update(args.current, args.baselines)
    return check(args.current, args.baselines)


if __name__ == "__main__":
    sys.exit(main())
