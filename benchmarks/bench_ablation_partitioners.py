"""A2 — partitioner ablation: ILP vs. list vs. level-clustering on synthetic graphs.

Runs all three partitioners over a set of random DSP-style task graphs and
reports the latency gap between the optimal ILP results and the heuristics.
The expected shape: the ILP is never worse, and on graphs with heterogeneous
task delays it is strictly better a meaningful fraction of the time.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.arch import generic_system
from repro.partition import (
    IlpTemporalPartitioner,
    LevelClusteringPartitioner,
    ListTemporalPartitioner,
    PartitionProblem,
    assert_valid,
)
from repro.taskgraph import random_dsp_task_graph

GRAPH_SEEDS = (0, 1, 2, 3, 4, 5)
TASKS_PER_GRAPH = 14


def _problems():
    system = generic_system(clb_capacity=900, memory_words=8192, reconfiguration_time=0.01)
    problems = []
    for seed in GRAPH_SEEDS:
        graph = random_dsp_task_graph(task_count=TASKS_PER_GRAPH, seed=seed, max_level_width=4)
        problems.append(PartitionProblem.from_system(graph, system))
    return problems


def test_partitioner_ablation(benchmark):
    problems = _problems()

    def run():
        rows = []
        for problem in problems:
            ilp = IlpTemporalPartitioner().partition(problem)
            greedy_list = ListTemporalPartitioner().partition(problem)
            level = LevelClusteringPartitioner().partition(problem)
            for result in (ilp, greedy_list, level):
                assert_valid(problem, result)
            rows.append(
                {
                    "graph": problem.graph.name,
                    "ilp_ns": ilp.computation_latency * 1e9,
                    "list_ns": greedy_list.computation_latency * 1e9,
                    "level_ns": level.computation_latency * 1e9,
                    "ilp_partitions": ilp.partition_count,
                    "list_partitions": greedy_list.partition_count,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    strictly_better = 0
    for row in rows:
        print(
            f"  {row['graph']}: ILP {row['ilp_ns']:.0f} ns "
            f"vs list {row['list_ns']:.0f} ns vs level {row['level_ns']:.0f} ns"
        )
        assert row["ilp_ns"] <= row["list_ns"] + 1e-6
        assert row["ilp_ns"] <= row["level_ns"] + 1e-6
        if row["ilp_ns"] < min(row["list_ns"], row["level_ns"]) - 1e-6:
            strictly_better += 1
    print(f"  ILP strictly better on {strictly_better}/{len(rows)} graphs")
    assert strictly_better >= 1

    record(
        "ablation_partitioners",
        total_seconds=benchmark_seconds(benchmark),
        graphs=len(rows),
        ilp_strictly_better=strictly_better,
    )
