"""Table 1 — DCT execution time under the FDH strategy (static vs. RTR).

Regenerates every row of the paper's Table 1: for each image of the workload
ladder, the total execution time of the static design and of the RTR design
sequenced with the Final-Data-to-Host strategy, together with the software
loop count ``I_sw``.

Paper findings reproduced and asserted here:

* FDH never beats the static design on the case-study board, for any image
  size up to 245,760 blocks;
* ``I_sw`` = 120 for the largest image (245,760 / 2,048);
* the deficit is dominated by the ``N * CT * I_sw`` reconfiguration term.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import reproduce_table1
from repro.experiments.table1 import paper_comparison


def test_table1_fdh(benchmark, case_study):
    result = benchmark(lambda: reproduce_table1(case_study))

    print()
    print(result.formatted())
    print()
    for row in paper_comparison(result):
        print(f"  {row['quantity']}: paper={row['paper']}  measured={row['measured']}")

    # Shape assertions (the paper's findings).
    assert len(result.rows) == 8
    assert not result.fdh_ever_improves
    largest = result.rows[0]
    assert largest["blocks"] == 245_760
    assert largest["I_sw"] == 120
    assert largest["rtr_fdh_seconds"] > largest["static_seconds"]

    record(
        "table1_fdh",
        mean_seconds=benchmark_seconds(benchmark),
        rows=len(result.rows),
        fdh_ever_improves=result.fdh_ever_improves,
        breakeven_blocks=result.breakeven_blocks,
        largest_static_seconds=largest["static_seconds"],
        largest_rtr_fdh_seconds=largest["rtr_fdh_seconds"],
    )
