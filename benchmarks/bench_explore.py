"""Exploration throughput — points/sec cold vs. warm cache, serial vs. workers.

Explores the JPEG-DCT design space with the ``grid`` strategy three ways:

* **cold** — fresh partition caches, at each configured worker count;
* **warm** — the same exploration again on the same flow engine, so every
  partition solve is served from the engine's LRU/disk caches and only the
  cheap downstream stages re-run;
* **store-warm** — the same exploration against the persistent run store,
  which must evaluate zero flow jobs.

Run standalone (``python benchmarks/bench_explore.py [--smoke]``) or under
pytest.  Environment knobs for constrained CI runners:

* ``REPRO_BENCH_EXPLORE_BUDGET`` — design points to visit (default 36);
* ``REPRO_BENCH_WORKERS`` — comma-separated worker counts (default 0,2,4);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard
  warm-speedup assertions (pool startup dominates tiny budgets).
"""

from __future__ import annotations

import os
import sys

from bench_utils import record

from repro.explore import ExploreConfig, Explorer, RunStore, SearchSpace
from repro.runtime import EngineConfig
from repro.synth import FlowEngine
from repro.units import ms

BUDGET = int(os.environ.get("REPRO_BENCH_EXPLORE_BUDGET", "36"))
WORKER_COUNTS = [
    int(item) for item in os.environ.get("REPRO_BENCH_WORKERS", "0,2,4").split(",")
]
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"


def _space() -> SearchSpace:
    # Six points per CT value (3 partitioners x 2 sequencings); size the CT
    # axis so the grid walk is at least BUDGET points with no dedup.
    ct_count = max(2, (BUDGET + 5) // 6)
    return SearchSpace.for_workloads(
        ["jpeg_dct"],
        ct_values=tuple(ms(1 + index) for index in range(ct_count)),
        partitioners=("ilp", "list", "level"),
        sequencings=("fdh", "idh"),
    )


def _config(workers: int, cache_dir=None) -> ExploreConfig:
    return ExploreConfig(
        strategy="grid",
        budget=BUDGET,
        batch_size=min(12, BUDGET),
        objectives=("latency", "area", "overhead", "throughput"),
        workers=workers,
        cache_dir=cache_dir,
    )


def _rate(result) -> float:
    return result.visited / result.wall_time if result.wall_time else float("inf")


def test_explore_throughput_cold_warm_and_store(tmp_path):
    space = _space()
    budget = min(BUDGET, space.size)
    print()
    print(f"exploring {budget} of {space.size} points "
          f"({os.cpu_count()} CPU(s) available)")

    cold_rates = {}
    warm_rate = None
    reference_engine = None
    for workers in WORKER_COUNTS:
        engine = FlowEngine(
            config=EngineConfig(workers=workers, cache_dir=tmp_path / f"pc-{workers}")
        )
        result = Explorer(space, config=_config(workers), flow_engine=engine).run()
        assert result.ok, [r.error for r in result.records if not r.ok]
        assert len(result.front) >= 1
        cold_rates[workers] = _rate(result)
        print(f"  cold, {workers} worker(s):  {result.wall_time:8.2f} s  "
              f"({cold_rates[workers]:7.1f} points/s)")
        if reference_engine is None:
            reference_engine = engine
            cold_time = result.wall_time

    # Warm cache: same flow engine, fresh (memory) store — the partition
    # stage is served from the engine caches, only cheap stages re-run.
    warm = Explorer(space, config=_config(WORKER_COUNTS[0]),
                    flow_engine=reference_engine).run()
    warm_rate = _rate(warm)
    print(f"  warm cache:        {warm.wall_time:8.2f} s  "
          f"({warm_rate:7.1f} points/s, "
          f"{warm.wall_time / cold_time * 100:.1f}% of cold)")

    # Store-warm: a resumed exploration runs zero flow jobs.
    store_path = tmp_path / "store.jsonl"
    with RunStore(store_path, space.fingerprint()) as store:
        first = Explorer(space, config=_config(WORKER_COUNTS[0]),
                         flow_engine=reference_engine, store=store).run()
    with RunStore(store_path, space.fingerprint()) as store:
        resumed = Explorer(space, config=_config(WORKER_COUNTS[0]),
                           flow_engine=reference_engine, store=store).run()
    print(f"  store-warm:        {resumed.wall_time:8.2f} s  "
          f"({_rate(resumed):7.1f} points/s, {resumed.flow_evaluated} flow jobs)")

    assert first.visited == resumed.visited == budget
    assert resumed.flow_evaluated == 0
    assert resumed.front.to_json_dict() == first.front.to_json_dict()

    record(
        "explore",
        budget=budget,
        cold_points_per_sec_by_workers={str(w): r for w, r in cold_rates.items()},
        warm_points_per_sec=warm_rate,
        warm_fraction_of_cold=warm.wall_time / cold_time if cold_time else 0.0,
        store_warm_points_per_sec=_rate(resumed),
        store_warm_flow_jobs=resumed.flow_evaluated,
        engine_stats=first.engine_stats,
    )
    if STRICT:
        assert warm.wall_time < cold_time * 0.5, (
            f"warm exploration took {warm.wall_time:.2f} s vs. cold "
            f"{cold_time:.2f} s; expected under 50%"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget, no strict speedup assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_EXPLORE_BUDGET", "12")
        os.environ.setdefault("REPRO_BENCH_WORKERS", "0,2")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
