"""Figure 4 — per-partition delay estimation on the worked example.

Recomputes the partition delays of the reconstructed Figure-4 graph: the three
root-to-leaf path prefixes mapped to partition 1 have delays 350/400/150 ns,
so partition 1's delay is 400 ns; partition 2's is 300 ns.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import reproduce_figure4


def test_figure4_delay_estimation(benchmark):
    result = benchmark(reproduce_figure4)
    print()
    print(f"  partition-1 path delays: {sorted(result.partition1_path_delays_ns)} ns")
    print(f"  partition delays: {result.partition_delays_ns} ns")
    assert result.matches_paper()
    assert sorted(round(d) for d in result.partition1_path_delays_ns) == [150, 350, 400]
    assert [round(d) for d in result.partition_delays_ns] == [400, 300]

    record(
        "fig4_delay_estimation",
        mean_seconds=benchmark_seconds(benchmark),
        partition_delays_ns=[round(d) for d in result.partition_delays_ns],
    )
