"""Load + fault benchmark for the work-stealing shard scheduler.

Drives an in-process scheduler daemon (:meth:`FlowServer.attach_schedule`)
through real worker sessions (:func:`run_scheduled_worker`) and measures
the three numbers the scheduler is accountable for:

* **throughput** — a W-worker fleet draining an M-range schedule over a
  pre-warmed flow cache: scheduled ranges/sec, i.e. pure protocol +
  store-streaming overhead per range;
* **steal latency** — one hoarder holds every lease; the p50/p99 wall time
  of a ``steal`` request (revoke + re-grant) from another worker;
* **recovery after SIGKILL** — a worker is shot while holding a lease
  (stuck in the ``REPRO_SCHED_DELAY_S`` hook); wall time from the kill to
  the whole schedule completing, re-issue included.

Correctness rides along: the merged frontier of the scheduled run must be
byte-identical to the unsharded reference run (``merged_equals_unsharded``
is gated at zero tolerance in ``check_regression.py``).

Environment knobs for constrained runners:

* ``REPRO_BENCH_SCHED_RANGES`` — ranges in the throughput fleet (default 24);
* ``REPRO_BENCH_SCHED_WORKERS`` — fleet size (default 4);
* ``REPRO_BENCH_SCHED_STEALS`` — timed steal requests (default 8).

Run standalone (``python benchmarks/bench_scheduler.py [--smoke]``) or
under pytest; ``--smoke`` presets a small fleet.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from bench_utils import record

from repro.explore import (
    DELAY_ENV,
    ExplorationPlan,
    ExploreConfig,
    Explorer,
    SearchSpace,
    merge_stores,
    run_scheduled_worker,
)
from repro.serve import FlowServer, ServeConfig, start_in_background
from repro.serve.client import FlowServiceClient
from repro.units import ms

RANGES = int(os.environ.get("REPRO_BENCH_SCHED_RANGES", "24"))
WORKERS = int(os.environ.get("REPRO_BENCH_SCHED_WORKERS", "4"))
STEALS = int(os.environ.get("REPRO_BENCH_SCHED_STEALS", "8"))

SPACE = SearchSpace.for_workloads(
    ["matmul_pipeline"],
    ct_values=(ms(1), ms(5), ms(20)),
    partitioners=("list", "level"),
    sequencings=("fdh", "idh"),
)

TWO = ("latency", "throughput")

#: A minimal but valid run-store body for protocol-only completions.
EMPTY_STORE = '{"kind":"meta","version":1,"space":"","context":{}}\n'


def _config() -> ExploreConfig:
    return ExploreConfig(
        strategy="grid", budget=SPACE.size, batch_size=4, objectives=TWO
    )


def _front_bytes(front) -> str:
    return json.dumps(front.to_json_dict(), sort_keys=True)


def _merged_front_bytes(plan: ExplorationPlan, scheduler) -> str:
    paths = [
        scheduler.store_paths()[index] for index in range(plan.range_count)
    ]
    return _front_bytes(merge_stores(paths, objectives=TWO).front)


def _stuck_worker_main(url: str, work_dir: str) -> None:
    os.environ[DELAY_ENV] = "60"
    run_scheduled_worker(
        url, worker_id="victim", work_dir=work_dir, timeout_s=120.0
    )


def _run_fleet(
    url: str, base: Path, cache_dir: str, workers: int
) -> Dict[str, object]:
    results = {}

    def pull(name: str) -> None:
        results[name] = run_scheduled_worker(
            url,
            worker_id=name,
            work_dir=str(base / name),
            cache_dir=cache_dir,
            range_delay_s=0.0,
        )

    threads = [
        threading.Thread(target=pull, args=(f"w{index}",))
        for index in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
        assert not thread.is_alive(), "a fleet worker never finished"
    wall = time.perf_counter() - start
    return {"wall_s": wall, "results": results}


def _percentile(sorted_ms: List[float], fraction: float) -> float:
    index = min(len(sorted_ms) - 1, int(fraction * len(sorted_ms)))
    return sorted_ms[index]


def test_scheduler_throughput_steal_and_recovery():
    print()
    print(
        f"scheduler: {RANGES} ranges, {WORKERS} workers, "
        f"{STEALS} timed steals, {os.cpu_count()} CPU(s)"
    )
    with tempfile.TemporaryDirectory(prefix="bench-sched-") as tmp:
        base = Path(tmp)
        cache_dir = str(base / "cache")

        # Unsharded reference (also warms the shared flow cache, so the
        # fleet measures scheduling overhead, not solve time).
        solo = Explorer(
            SPACE,
            config=ExploreConfig(
                strategy="grid", budget=SPACE.size, batch_size=4,
                objectives=TWO, cache_dir=cache_dir,
            ),
        ).run()
        solo_bytes = _front_bytes(solo.front)

        # --------------------------------------------------------------
        # Throughput: a W-worker fleet drains M ranges.
        # --------------------------------------------------------------
        plan = ExplorationPlan.from_config(SPACE, _config(), RANGES)
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, base / "fleet.jsonl", lease_timeout=30.0)
        with start_in_background(server=server) as handle:
            fleet = _run_fleet(handle.url, base, cache_dir, WORKERS)
            scheduler = server.schedule.scheduler
            assert scheduler.done
            merged_bytes = _merged_front_bytes(plan, scheduler)
        ranges_per_sec = RANGES / fleet["wall_s"]
        merged_ok = merged_bytes == solo_bytes
        print(
            f"  fleet: {RANGES} ranges in {fleet['wall_s']:.2f} s "
            f"-> {ranges_per_sec:.1f} ranges/s, "
            f"merged == unsharded: {merged_ok}"
        )

        # --------------------------------------------------------------
        # Steal latency: revoke + re-grant under one roundtrip.
        # --------------------------------------------------------------
        plan_s = ExplorationPlan.from_config(SPACE, _config(), STEALS)
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan_s, base / "steal.jsonl",
                               lease_timeout=600.0)
        steal_ms: List[float] = []
        with start_in_background(server=server) as handle:
            hoarder = FlowServiceClient(handle.url)
            thief = FlowServiceClient(handle.url)
            for _ in range(STEALS):
                assert hoarder.scheduler_lease("hoarder")["granted"]
            for _ in range(STEALS):
                start = time.perf_counter()
                ack = thief.scheduler_steal("thief")
                steal_ms.append((time.perf_counter() - start) * 1e3)
                assert ack["granted"] and ack["stolen_from"] == "hoarder"
                thief.scheduler_complete(
                    ack["lease_id"], store_data=EMPTY_STORE
                )
            assert server.schedule.scheduler.done
        steal_ms.sort()
        steal_p50 = _percentile(steal_ms, 0.50)
        steal_p99 = _percentile(steal_ms, 0.99)
        print(
            f"  steal: p50 {steal_p50:.2f} ms   p99 {steal_p99:.2f} ms "
            f"({STEALS} revoke+regrant roundtrips)"
        )

        # --------------------------------------------------------------
        # Recovery: SIGKILL a lease holder, time until schedule done.
        # --------------------------------------------------------------
        plan_k = ExplorationPlan.from_config(SPACE, _config(), 4)
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan_k, base / "kill.jsonl", lease_timeout=0.5)
        with start_in_background(server=server) as handle:
            scheduler = server.schedule.scheduler
            victim = multiprocessing.get_context("spawn").Process(
                target=_stuck_worker_main,
                args=(handle.url, str(base / "victim")),
            )
            victim.start()
            deadline = time.monotonic() + 60.0
            while not scheduler.live_leases():
                assert time.monotonic() < deadline, "victim never leased"
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            killed_at = time.perf_counter()
            victim.join(timeout=10.0)
            run_scheduled_worker(
                handle.url,
                worker_id="medic",
                work_dir=str(base / "medic"),
                cache_dir=cache_dir,
                range_delay_s=0.0,
            )
            recovery_s = time.perf_counter() - killed_at
            assert scheduler.done
            assert scheduler.reissued + scheduler.stolen >= 1
        print(
            f"  recovery: schedule done {recovery_s:.2f} s after SIGKILL "
            f"(lease timeout 0.5 s)"
        )

    record(
        "scheduler",
        ranges=RANGES,
        workers=WORKERS,
        fleet_wall_s=fleet["wall_s"],
        ranges_per_sec=ranges_per_sec,
        merged_equals_unsharded=merged_ok,
        steal_requests=STEALS,
        steal_latency_ms_p50=steal_p50,
        steal_latency_ms_p99=steal_p99,
        recovery_after_kill_s=recovery_s,
    )
    assert merged_ok, "scheduled merge diverged from the unsharded frontier"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet for CI smoke runs")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_SCHED_RANGES", "8")
        os.environ.setdefault("REPRO_BENCH_SCHED_WORKERS", "2")
        os.environ.setdefault("REPRO_BENCH_SCHED_STEALS", "4")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
