"""The complete reproduction in one benchmark.

Runs every experiment driver (Tables 1-2, the in-text claims, the figure
checks) through :func:`repro.experiments.reproduction_report` and asserts that
every paper claim lands inside its expectation band.  This is the single
benchmark to run for a yes/no answer to "does the reproduction hold?".
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import format_reproduction_report, reproduction_report


def test_full_reproduction_report(benchmark, case_study):
    report = benchmark(lambda: reproduction_report(case_study))
    print()
    print(format_reproduction_report(report))
    assert report.all_ok, f"claims outside expectation bands: {report.failed()}"
    assert len(report.checks) >= 12

    record(
        "reproduction_report",
        mean_seconds=benchmark_seconds(benchmark),
        checks=len(report.checks),
        all_ok=report.all_ok,
    )
