"""E3 (comparison) — list-based baseline vs. the ILP partitioner on the DCT.

The paper argues that a list-based temporal partitioner would top partition 1
up with T2 tasks (it has 480 unused CLBs), lengthening the partition's
critical path and hence the overall latency.  This bench measures both
partitioners and asserts exactly that relationship: the list baseline lands on
10,960 ns (3,400 + 2,520 added to partition 1) against the ILP's 8,440 ns.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.partition import (
    IlpTemporalPartitioner,
    ListTemporalPartitioner,
    compare_partitionings,
)
from repro.units import ns


def test_list_partitioner_baseline(benchmark, dct_problem, dct_graph):
    result = benchmark(lambda: ListTemporalPartitioner().partition(dct_problem))

    print()
    print(result.describe())

    # The heuristic mixes two T2 tasks into partition 1 (1600 - 16*70 = 480 CLBs free).
    first = result.tasks_in_partition(1)
    t2_in_first = [name for name in first if dct_graph.task(name).task_type == "T2"]
    assert len(t2_in_first) == 2
    assert abs(result.computation_latency - ns(10960)) < 1e-12

    record(
        "list_vs_ilp",
        list_mean_seconds=benchmark_seconds(benchmark),
        list_latency_ns=result.computation_latency * 1e9,
    )


def test_ilp_vs_list_improvement(benchmark, dct_problem):
    def run():
        ilp = IlpTemporalPartitioner().partition(dct_problem)
        heuristic = ListTemporalPartitioner().partition(dct_problem)
        return compare_partitionings(heuristic, ilp)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"  list latency {comparison.baseline_computation_latency * 1e9:.0f} ns, "
        f"ILP latency {comparison.candidate_computation_latency * 1e9:.0f} ns, "
        f"computation-latency improvement "
        f"{comparison.computation_latency_improvement * 100:.1f}%"
    )
    assert comparison.candidate_wins
    # 8440 vs 10960 ns -> ~23 % lower computation latency.
    assert 0.20 < comparison.computation_latency_improvement < 0.26

    record(
        "list_vs_ilp",
        ilp_improvement_fraction=comparison.computation_latency_improvement,
    )
