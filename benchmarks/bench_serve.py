"""Load generator for the design-flow service daemon (``repro serve``).

Drives an in-process daemon (:func:`repro.serve.start_in_background`)
through the blocking client, exactly the way external clients would, and
measures the three temperatures the service exists for:

* **cold** — N distinct ``random_layered`` jobs (different graph seeds, so
  every one is a genuine end-to-end solve), submitted closed-loop;
* **warm** — the same N specs resubmitted to the same daemon: every ack is
  ``coalesced-cached`` and the answer comes straight from the completed
  entry, so the per-request latency is pure service overhead;
* **concurrent duplicates** — M clients submit one identical ``jpeg_dct``
  spec simultaneously against a *fresh* daemon (fresh private cache): the
  queue must coalesce them onto exactly one partition solve, verified from
  the summed worker-engine ``cache_misses`` counter.

It also replays the cold run against a second fresh daemon and asserts the
canonically encoded results are byte-identical — the service keeps the
repo's determinism contract.

Reported metrics (``BENCH_serve.json``): requests/sec plus p50/p99/mean
latency per temperature, ``warm_speedup_vs_cold``,
``concurrent_duplicate_solves`` and the byte-identity flag.  Gated by
``check_regression.py``: the warm path must stay an order of magnitude
faster than cold, warm throughput must not collapse, and the duplicate
phase must never run a second solve.

Environment knobs for constrained runners:

* ``REPRO_BENCH_SERVE_JOBS`` — distinct cold jobs (default 8);
* ``REPRO_BENCH_SERVE_DUPES`` — concurrent duplicate clients (default 16);
* ``REPRO_BENCH_SERVE_WORKERS`` — daemon worker count (default 2);
* ``REPRO_BENCH_STRICT=0`` — measure and print, skip the hard assertions.

Run standalone (``python benchmarks/bench_serve.py [--smoke]``) or under
pytest; ``--smoke`` presets a small cold batch with no strict assertions.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Tuple

from bench_utils import record

from repro.serve import (
    FlowServiceClient,
    JobSpec,
    ServeConfig,
    encode_result,
    start_in_background,
)

COLD_JOBS = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "8"))
DUPLICATE_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_DUPES", "16"))
WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "2"))


def _cold_specs() -> List[JobSpec]:
    """N distinct design problems: different graph seeds, no dedup."""
    return [
        JobSpec(workload="random_layered", params={"seed": seed})
        for seed in range(COLD_JOBS)
    ]


def _percentile(sorted_ms: List[float], fraction: float) -> float:
    index = min(len(sorted_ms) - 1, int(fraction * len(sorted_ms)))
    return sorted_ms[index]


def _latency_summary(latencies_s: List[float]) -> Dict[str, float]:
    ordered = sorted(seconds * 1e3 for seconds in latencies_s)
    total = sum(latencies_s)
    return {
        "requests": len(ordered),
        "requests_per_sec": len(ordered) / total if total else 0.0,
        "mean_ms": sum(ordered) / len(ordered),
        "p50_ms": _percentile(ordered, 0.50),
        "p99_ms": _percentile(ordered, 0.99),
    }


def _run_closed_loop(
    client: FlowServiceClient, specs: List[JobSpec]
) -> Tuple[List[float], List[str], List[str]]:
    """Submit + wait + fetch each spec in turn; per-request wall latencies."""
    latencies: List[float] = []
    encoded: List[str] = []
    dispositions: List[str] = []
    for spec in specs:
        start = time.perf_counter()
        ack = client.submit(spec)
        client.wait(ack["job_id"], timeout=600)
        payload = client.result(ack["job_id"])
        latencies.append(time.perf_counter() - start)
        dispositions.append(ack["disposition"])
        assert payload["state"] == "done", (
            f"{spec.workload} seed {spec.seed} failed: {payload}"
        )
        encoded.append(encode_result(payload["result"]))
    return latencies, encoded, dispositions


def test_cold_warm_and_duplicate_load():
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    specs = _cold_specs()
    print()
    print(
        f"serve load: {len(specs)} distinct jobs, {DUPLICATE_CLIENTS} "
        f"duplicate clients, {WORKERS} workers, {os.cpu_count()} CPU(s)"
    )

    # ------------------------------------------------------------------
    # Cold + warm against one daemon (private cache: nothing pre-warmed).
    # ------------------------------------------------------------------
    with start_in_background(ServeConfig(port=0, workers=WORKERS)) as handle:
        client = FlowServiceClient(handle.url)
        cold_latencies, cold_bytes, cold_dispositions = _run_closed_loop(
            client, specs
        )
        assert all(d == "queued" for d in cold_dispositions)
        warm_latencies, warm_bytes, warm_dispositions = _run_closed_loop(
            client, specs
        )
        assert all(d == "coalesced-cached" for d in warm_dispositions)
        assert warm_bytes == cold_bytes
        stats = client.stats()
        assert stats["pool"]["jobs_run"] == len(specs)

    cold = _latency_summary(cold_latencies)
    warm = _latency_summary(warm_latencies)
    warm_speedup = cold["mean_ms"] / warm["mean_ms"]
    print(
        f"  cold: {cold['requests_per_sec']:7.1f} req/s   "
        f"p50 {cold['p50_ms']:8.2f} ms   p99 {cold['p99_ms']:8.2f} ms"
    )
    print(
        f"  warm: {warm['requests_per_sec']:7.1f} req/s   "
        f"p50 {warm['p50_ms']:8.2f} ms   p99 {warm['p99_ms']:8.2f} ms   "
        f"({warm_speedup:.1f}x faster than cold)"
    )

    # ------------------------------------------------------------------
    # Concurrent identical submissions against a fresh daemon.
    # ------------------------------------------------------------------
    duplicate_spec = JobSpec(workload="jpeg_dct")
    barrier = threading.Barrier(DUPLICATE_CLIENTS)
    results: List[str] = [""] * DUPLICATE_CLIENTS
    duplicate_latencies: List[float] = [0.0] * DUPLICATE_CLIENTS

    with start_in_background(ServeConfig(port=0, workers=WORKERS)) as handle:
        url = handle.url

        def one_client(index: int) -> None:
            client = FlowServiceClient(url)
            barrier.wait(timeout=60)
            start = time.perf_counter()
            ack = client.submit(duplicate_spec)
            client.wait(ack["job_id"], timeout=600)
            payload = client.result(ack["job_id"])
            duplicate_latencies[index] = time.perf_counter() - start
            results[index] = encode_result(payload["result"])

        threads = [
            threading.Thread(target=one_client, args=(index,), daemon=True)
            for index in range(DUPLICATE_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "a duplicate client never finished"
        stats = FlowServiceClient(url).stats()

    duplicate_solves = stats["pool"]["engine"]["cache_misses"]
    coalesced = stats["queue"]["coalesced"]
    duplicate = _latency_summary(duplicate_latencies)
    assert len(set(results)) == 1, "duplicate clients saw different results"
    print(
        f"  dupes: {DUPLICATE_CLIENTS} clients -> {duplicate_solves} solve(s), "
        f"{coalesced} coalesced   p99 {duplicate['p99_ms']:8.2f} ms"
    )

    # ------------------------------------------------------------------
    # Determinism: a second fresh daemon replays the cold run bit-for-bit.
    # ------------------------------------------------------------------
    with start_in_background(ServeConfig(port=0, workers=WORKERS)) as handle:
        _, replay_bytes, _ = _run_closed_loop(
            FlowServiceClient(handle.url), specs
        )
    bytes_identical = "\n".join(replay_bytes) == "\n".join(cold_bytes)
    print(f"  replay: result bytes identical = {bytes_identical}")

    record(
        "serve",
        workers=WORKERS,
        cold_jobs=len(specs),
        cold_requests_per_sec=cold["requests_per_sec"],
        cold_mean_ms=cold["mean_ms"],
        cold_p50_ms=cold["p50_ms"],
        cold_p99_ms=cold["p99_ms"],
        warm_requests_per_sec=warm["requests_per_sec"],
        warm_mean_ms=warm["mean_ms"],
        warm_p50_ms=warm["p50_ms"],
        warm_p99_ms=warm["p99_ms"],
        warm_speedup_vs_cold=warm_speedup,
        duplicate_clients=DUPLICATE_CLIENTS,
        concurrent_duplicate_solves=duplicate_solves,
        concurrent_duplicate_coalesced=coalesced,
        duplicate_p99_ms=duplicate["p99_ms"],
        deterministic_result_bytes_identical=bytes_identical,
    )

    assert bytes_identical, "replayed cold run produced different result bytes"
    assert duplicate_solves == 1, (
        f"{DUPLICATE_CLIENTS} identical submissions ran "
        f"{duplicate_solves} partition solves (expected exactly 1)"
    )
    assert coalesced == DUPLICATE_CLIENTS - 1
    if strict:
        assert warm_speedup >= 10.0, (
            f"warm path only {warm_speedup:.1f}x faster than cold "
            "(claimed >= 10x)"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small cold batch, no strict assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_SERVE_JOBS", "4")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
