"""E5 — loop-fission memory analysis (Eq. 9): k = 64K / max(32, 16, 16) = 2048.

Times the memory-map construction plus the Eq. 9 analysis for the partitioned
DCT and asserts the paper's numbers: partition 1 stores 32 words per block
computation (16 inputs + 16 intermediate results), the later partitions 16
words of input/output each, and 2,048 block computations fit in the 64K-word
memory per board invocation.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.fission import analyse_fission
from repro.memmap import build_memory_map


def test_loop_fission_analysis(benchmark, case_study):
    def run():
        memory_map = build_memory_map(case_study.partitioning)
        return memory_map, analyse_fission(
            case_study.partitioning,
            case_study.system.memory_capacity_words,
            memory_map=memory_map,
        )

    memory_map, analysis = benchmark(run)

    print()
    print("  " + analysis.describe())

    assert analysis.computations_per_run == 2048
    assert analysis.limiting_partition == 1
    assert analysis.max_per_iteration_words == 32
    # The paper's per-partition counts (inputs + outputs, ignoring pass-through).
    block1 = memory_map.block(1)
    assert block1.input_words() + block1.output_words() == 32
    for index in (2, 3):
        block = memory_map.block(index)
        io_words = block.input_words() + block.output_words()
        assert io_words == 16
    # Software loop count for the largest image: ceil(245760 / 2048) = 120.
    assert analysis.software_loop_count(245_760) == 120

    record(
        "loop_fission_analysis",
        mean_seconds=benchmark_seconds(benchmark),
        computations_per_run=analysis.computations_per_run,
        max_per_iteration_words=analysis.max_per_iteration_words,
    )
