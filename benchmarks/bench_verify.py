"""Differential-verification throughput — scenarios/sec through the harness.

Runs the seeded verification harness end-to-end (scenario generation, cold
ILP+list flows, warm cache re-run, the full oracle suite, JSONL store) and
reports scenarios per second plus the per-oracle tallies.  A second run from
the same seed checks that the verdict store is byte-identical — the
determinism the harness trades on.

Run standalone (``python benchmarks/bench_verify.py [--smoke]``) or under
pytest.  Environment knobs for constrained CI runners:

* ``REPRO_BENCH_VERIFY_SCENARIOS`` — scenarios to verify (default 60);
* ``REPRO_BENCH_VERIFY_SEED`` — base seed (default 0);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the throughput
  assertion.
"""

from __future__ import annotations

import os
import sys

from bench_utils import record

from repro.verify import Verifier, VerifyConfig

SCENARIOS = int(os.environ.get("REPRO_BENCH_VERIFY_SCENARIOS", "60"))
SEED = int(os.environ.get("REPRO_BENCH_VERIFY_SEED", "0"))
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"


def test_verify_throughput(tmp_path):
    print()
    print(f"verifying {SCENARIOS} scenarios from seed {SEED} "
          f"({os.cpu_count()} CPU(s) available)")

    store_a = tmp_path / "verdicts-a.jsonl"
    report = Verifier(
        VerifyConfig(scenarios=SCENARIOS, seed=SEED, store_path=store_a)
    ).run()
    print("  " + report.describe().replace("\n", "\n  "))
    assert report.ok, report.describe()

    # Same seed, fresh harness: the verdict JSONL must be byte-identical.
    store_b = tmp_path / "verdicts-b.jsonl"
    repeat = Verifier(
        VerifyConfig(scenarios=SCENARIOS, seed=SEED, store_path=store_b)
    ).run()
    assert repeat.ok
    assert store_a.read_bytes() == store_b.read_bytes(), (
        "two runs from the same seed wrote different verdict stores"
    )
    print(f"  verdict store deterministic: {store_a.stat().st_size} bytes")

    counts = report.oracle_counts()
    record(
        "verify",
        scenarios=SCENARIOS,
        seed=SEED,
        scenarios_per_sec=report.scenarios_per_second,
        flow_wall_time_s=report.flow_wall_time,
        wall_time_s=report.wall_time,
        oracle_counts=counts,
        engine_stats=report.engine_stats,
        store_bytes=store_a.stat().st_size,
    )
    if STRICT:
        assert report.scenarios_per_second > 1.0, (
            f"verification ran at {report.scenarios_per_second:.2f} "
            "scenarios/s; expected more than 1/s"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenario budget, no strict throughput assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_VERIFY_SCENARIOS", "15")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
