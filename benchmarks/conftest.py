"""Shared fixtures for the benchmark harness.

Every benchmark regenerates (a piece of) the paper's evaluation; the fixtures
here build the expensive artefacts once per session so the timed portions
measure exactly the stage named by each benchmark.
"""

from __future__ import annotations

import pytest

from repro.arch import paper_case_study_system
from repro.experiments import build_case_study
from repro.jpeg import build_dct_task_graph
from repro.partition import PartitionProblem


@pytest.fixture(scope="session")
def paper_system():
    """The case-study board/host system."""
    return paper_case_study_system()


@pytest.fixture(scope="session")
def dct_graph():
    """The 32-task DCT task graph with the paper's costs."""
    return build_dct_task_graph()


@pytest.fixture(scope="session")
def dct_problem(dct_graph, paper_system):
    """The temporal-partitioning problem of the case study."""
    return PartitionProblem.from_system(dct_graph, paper_system)


@pytest.fixture(scope="session")
def case_study():
    """The full case study built from the paper's reference assignment.

    Benchmarks that time the ILP itself build their own partitioner runs; for
    everything downstream the reference assignment avoids paying the solve
    time in every fixture consumer.
    """
    return build_case_study(use_ilp=False)
