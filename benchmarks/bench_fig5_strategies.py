"""Figure 5 — the two host-sequencing strategies compared.

Figure 5 illustrates how FDH re-walks the configuration sequence for every
batch of k computations while IDH configures each partition exactly once.
The bench evaluates both the configuration-load counts and the paper's
overhead formulas for the largest workload (N*CT*I_sw vs.
N*CT + 2*k*I_sw*D_tr*m_temp), and additionally simulates both schedules to
confirm the sequencing order.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import reproduce_figure5
from repro.fission import SequencingStrategy
from repro.simulate import RtrExecutionSimulator, configuration_sequence


def test_figure5_strategy_overheads(benchmark, case_study):
    result = benchmark(lambda: reproduce_figure5(case_study))
    print()
    print(f"  I_sw = {result.software_loop_count}")
    print(f"  FDH: {result.fdh_configuration_loads} configuration loads, "
          f"reconfiguration overhead {result.fdh_reconfiguration_overhead:.1f} s")
    print(f"  IDH: {result.idh_configuration_loads} configuration loads, "
          f"overhead (N*CT + host transfers) {result.idh_overhead:.3f} s")
    assert result.fdh_configuration_loads == 360
    assert result.idh_configuration_loads == 3
    assert result.fdh_reconfiguration_overhead > 30
    assert result.idh_overhead < 1.0

    record(
        "fig5_strategies",
        overheads_mean_seconds=benchmark_seconds(benchmark),
        fdh_configuration_loads=result.fdh_configuration_loads,
        idh_configuration_loads=result.idh_configuration_loads,
    )


def test_figure5_sequencing_order(benchmark, case_study):
    simulator = RtrExecutionSimulator(case_study.system)

    def run():
        fdh = simulator.simulate(
            case_study.rtr_spec, SequencingStrategy.FDH, 3 * 2048, keep_events=True
        )
        idh = simulator.simulate(
            case_study.rtr_spec, SequencingStrategy.IDH, 3 * 2048, keep_events=True
        )
        return configuration_sequence(fdh.events), configuration_sequence(idh.events)

    fdh_sequence, idh_sequence = benchmark(run)
    assert fdh_sequence == [1, 2, 3] * 3       # reconfigure every batch (Fig. 5b)
    assert idh_sequence == [1, 2, 3]           # configure each partition once (Fig. 5c)

    record(
        "fig5_strategies",
        simulation_mean_seconds=benchmark_seconds(benchmark),
    )
