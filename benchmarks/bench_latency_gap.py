"""E4 — per-block latency gap between the static and RTR designs.

The paper: "If we ignore the reconfiguration overhead this is a RTR design
takes 7560 ns less than the static design on a single 4x4 DCT computation"
(static: 160 cycles @ 100 ns = 16,000 ns; RTR: 68 cycles @ 50 ns + 2 x 36
cycles @ 70 ns = 8,440 ns).  The bench times the flow stage that produces the
RTR block latency (partitioning artefacts -> timing spec) and asserts the gap.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import paper_constants as paper
from repro.fission import analyse_fission, rtr_timing_spec
from repro.jpeg import static_design_delay
from repro.memmap import build_memory_map
from repro.units import ns


def test_latency_gap(benchmark, case_study):
    def run():
        memory_map = build_memory_map(case_study.partitioning)
        fission = analyse_fission(
            case_study.partitioning, case_study.system.memory_capacity_words, memory_map
        )
        return rtr_timing_spec(case_study.partitioning, fission, memory_map)

    spec = benchmark(run)
    static_delay = static_design_delay()
    gap = static_delay - spec.block_delay

    print()
    print(
        f"  static {static_delay * 1e9:.0f} ns/block, RTR {spec.block_delay * 1e9:.0f} ns/block, "
        f"gap {gap * 1e9:.0f} ns"
    )

    assert abs(spec.block_delay - paper.RTR_BLOCK_LATENCY) < 1e-12
    assert abs(static_delay - paper.STATIC_BLOCK_LATENCY) < 1e-12
    assert abs(gap - ns(7560)) < 1e-12

    record(
        "latency_gap",
        mean_seconds=benchmark_seconds(benchmark),
        static_block_ns=static_delay * 1e9,
        rtr_block_ns=spec.block_delay * 1e9,
        gap_ns=gap * 1e9,
    )
