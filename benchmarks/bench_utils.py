"""Shared helpers for the benchmark harness.

Every benchmark emits a machine-readable ``BENCH_<name>.json`` next to its
human-readable prints, so the performance trajectory (points/sec,
wall-times, cache stats) is trackable across commits and uploadable as a CI
artifact.  Usage, from inside a benchmark test::

    from bench_utils import record

    record("engine_scaling", cold_jobs_per_s=rate, warm_ratio=ratio)

Repeated calls for the same benchmark merge their metrics into one file, so
multi-test benchmarks accumulate a single report.  The output directory is
the current working directory unless ``REPRO_BENCH_JSON_DIR`` points
elsewhere (CI sets it to the artifact-upload directory).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, Optional, Union

#: Environment variable choosing where BENCH_*.json files land.
JSON_DIR_ENV = "REPRO_BENCH_JSON_DIR"

#: Schema version of the emitted JSON files.
BENCH_SCHEMA_VERSION = 1


def bench_json_dir() -> Path:
    """The directory benchmark JSON reports are written to."""
    return Path(os.environ.get(JSON_DIR_ENV, "."))


def bench_json_path(name: str) -> Path:
    """The ``BENCH_<name>.json`` path for benchmark *name*."""
    return bench_json_dir() / f"BENCH_{name}.json"


def record(
    name: str,
    metrics: Optional[Dict[str, object]] = None,
    **extra: object,
) -> Path:
    """Merge *metrics* (and keyword extras) into ``BENCH_<name>.json``.

    Values should be JSON-able scalars or small structures (rates, seconds,
    counters, cache-stat dicts).  Existing metrics of the same name are
    overwritten; metrics from other tests of the same benchmark are kept.
    Returns the path written.
    """
    path = bench_json_path(name)
    merged: Dict[str, object] = {}
    if path.is_file():
        try:
            with path.open("r", encoding="utf-8") as handle:
                previous = json.load(handle)
            if isinstance(previous, dict):
                merged.update(previous.get("metrics", {}))
        except (OSError, ValueError):
            pass  # a corrupt previous report is simply replaced
    merged.update(metrics or {})
    merged.update(extra)
    payload = {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "metrics": _jsonable(merged),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def benchmark_seconds(benchmark) -> Optional[float]:
    """Mean seconds of a completed pytest-benchmark fixture run, if known."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return None


def _jsonable(value: Union[Dict, list, tuple, object]):
    """Best-effort conversion of metric values into JSON-able structures."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
