"""Sharded exploration throughput — points/sec at 1/2/4/8 shards + merge time.

Explores a space in which **every point is a distinct partition problem**
(workload graph variants x partitioner, a single CT and sequencing), so the
flow-engine caches cannot collapse the work and the shard processes see
real, disjoint solve loads.  For each configured shard count the bench runs
a cold ``run_sharded`` with fresh stores and a fresh per-run disk cache,
then checks that every merged union frontier is byte-identical to the
unsharded reference front — the machine-independent correctness metric the
regression gate pins at zero tolerance.

Run standalone (``python benchmarks/bench_explore_sharded.py [--smoke]``)
or under pytest.  Environment knobs for constrained CI runners:

* ``REPRO_BENCH_SHARDS`` — comma-separated shard counts (default 1,2,4,8);
* ``REPRO_BENCH_SHARDED_BUDGET`` — design points to visit (default 48);
* ``REPRO_BENCH_STRICT=0`` — measure and print, but skip the hard >= 3x
  speedup assertion (which also needs >= 4 CPUs and a 4-shard tier; the
  byte-identity assertion always runs).
"""

from __future__ import annotations

import json
import os
import sys

from bench_utils import record

from repro.explore import (
    ExploreConfig,
    Explorer,
    RunStore,
    SearchSpace,
    run_sharded,
)
from repro.units import ms

BUDGET = int(os.environ.get("REPRO_BENCH_SHARDED_BUDGET", "48"))
SHARD_COUNTS = [
    int(item) for item in os.environ.get("REPRO_BENCH_SHARDS", "1,2,4,8").split(",")
]
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: The >= 3x-at-4-shards claim only holds with real parallel hardware.
SPEEDUP_SHARDS = 4
SPEEDUP_FLOOR = 3.0


def _space() -> SearchSpace:
    # Graph variants x partitioners: 17 distinct task graphs x 3 partition
    # algorithms = 51 distinct partition problems.  One CT and sequencing,
    # so no two points share a solve — sharding splits actual work, not
    # cache hits.
    return SearchSpace.for_workloads(
        ["random_layered", "fir_filterbank", "wavelet_pyramid", "matmul_pipeline"],
        variants=True,
        ct_values=(ms(5),),
        partitioners=("ilp", "list", "level"),
        sequencings=("idh",),
    )


def _config(cache_dir) -> ExploreConfig:
    return ExploreConfig(
        strategy="grid",
        budget=BUDGET,
        batch_size=min(12, BUDGET),
        objectives=("latency", "throughput"),
        workers=0,  # the shard processes are the parallelism
        cache_dir=cache_dir,
    )


def _front_bytes(front) -> str:
    return json.dumps(front.to_json_dict(), sort_keys=True)


def test_sharded_explore_scaling(tmp_path):
    space = _space()
    budget = min(BUDGET, space.size)
    print()
    print(f"exploring {budget} of {space.size} points at shard counts "
          f"{SHARD_COUNTS} ({os.cpu_count()} CPU(s) available)")

    # Unsharded reference: the frontier every merged run must reproduce
    # byte for byte.  Fresh cache, persistent store, serial engine — the
    # same configuration a 1-shard run uses.
    with RunStore(tmp_path / "solo.jsonl", space.fingerprint()) as store:
        solo = Explorer(
            space, config=_config(tmp_path / "cache-solo"), store=store
        ).run()
    assert solo.ok, [r.error for r in solo.records if not r.ok]
    reference = _front_bytes(solo.front)
    solo_rate = solo.visited / solo.wall_time if solo.wall_time else float("inf")
    print(f"  unsharded reference: {solo.wall_time:8.2f} s "
          f"({solo_rate:7.1f} points/s, front size {len(solo.front)})")

    rates = {}
    merge_seconds = {}
    identical = True
    for count in SHARD_COUNTS:
        run_dir = tmp_path / f"shards-{count}"
        run_dir.mkdir()
        result = run_sharded(
            space,
            _config(run_dir / "cache"),
            count,
            run_dir / "run.jsonl",
        )
        assert result.ok
        rates[count] = budget / result.wall_time if result.wall_time else float("inf")
        merge_seconds[count] = result.merge.merge_time
        same = _front_bytes(result.front) == reference
        identical = identical and same
        print(f"  {count} shard(s): {result.wall_time:8.2f} s "
              f"({rates[count]:7.1f} points/s, merge {result.merge.merge_time:.3f} s, "
              f"merged front {'==' if same else '!='} unsharded)")

    # The correctness half of the bench is unconditional: a sharded run
    # that produces a different frontier is wrong at any speed.
    assert identical, "a merged shard frontier diverged from the unsharded front"

    max_shards = max(SHARD_COUNTS)
    serial_rate = rates.get(1, solo_rate)
    speedup = rates[max_shards] / serial_rate if serial_rate else 0.0
    print(f"  speedup at {max_shards} shards: {speedup:.2f}x")

    record(
        "explore_sharded",
        budget=budget,
        space_size=space.size,
        points_per_sec_by_shards={str(c): r for c, r in rates.items()},
        merge_seconds_by_shards={str(c): s for c, s in merge_seconds.items()},
        merge_seconds=merge_seconds[max_shards],
        merged_front_size=len(solo.front),
        merged_equals_unsharded=1.0 if identical else 0.0,
        cold_points_per_sec_serial=serial_rate,
        speedup_at_max_shards=speedup,
    )

    cpus = os.cpu_count() or 1
    if STRICT and cpus >= SPEEDUP_SHARDS and SPEEDUP_SHARDS in rates:
        four_way = rates[SPEEDUP_SHARDS] / serial_rate
        assert four_way >= SPEEDUP_FLOOR, (
            f"cold {SPEEDUP_SHARDS}-shard run reached only {four_way:.2f}x "
            f"over serial; expected >= {SPEEDUP_FLOOR}x"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget, 1+2 shards, no speedup assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_SHARDED_BUDGET", "12")
        os.environ.setdefault("REPRO_BENCH_SHARDS", "1,2")
        os.environ.setdefault("REPRO_BENCH_STRICT", "0")
    import pytest

    return pytest.main([__file__, "-x", "-q", "-s"])


if __name__ == "__main__":
    sys.exit(main())
