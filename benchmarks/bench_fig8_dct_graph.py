"""Figure 8 — construction and structure of the DCT task graph.

Times the task-graph builder and asserts the structure Figure 8 describes:
32 vector-product tasks (16 T1 + 16 T2), four collections of eight tasks (one
per output row), each T2 task consuming the four T1 results of its row, and
the DSS-estimated costs of 70/180 CLBs per task type.
"""

from __future__ import annotations

from bench_utils import benchmark_seconds, record

from repro.experiments import reproduce_figure8
from repro.jpeg import build_dct_task_graph


def test_figure8_task_graph(benchmark, case_study):
    graph = benchmark(build_dct_task_graph)
    structure = reproduce_figure8(case_study)
    print()
    print(f"  {structure.task_count} tasks = {structure.t1_count} T1 + {structure.t2_count} T2, "
          f"{structure.collections} collections of {2 * structure.tasks_per_collection // 2} tasks, "
          f"fan-in {structure.fan_in_per_t2}")
    assert len(graph) == 32
    assert structure.t1_count == 16 and structure.t2_count == 16
    assert structure.collections == 4
    assert structure.fan_in_per_t2 == 4
    assert graph.task("t1_r0c0").clbs == 70
    assert graph.task("t2_r0c0").clbs == 180
    # Total area (4000 CLBs) exceeds the XC4044: the reason partitioning is needed.
    assert graph.total_resources()["clb"] == 4000

    record(
        "fig8_dct_graph",
        mean_seconds=benchmark_seconds(benchmark),
        tasks=len(graph),
        total_clbs=graph.total_resources()["clb"],
    )
