"""Tests for the work-stealing shard scheduler (repro.explore.scheduler).

The lease protocol's contracts, unit-tested and property-tested over
arbitrary interleavings of lease/renew/expire/steal/complete events:

* every range is completed **exactly once** in the final accounting, no
  matter how often leases expire, are stolen, or complete late;
* no two live leases ever overlap on one range;
* the whole scheduler state round-trips through its JSON snapshot at any
  point of any interleaving;
* the published :class:`ExplorationPlan` (and the :class:`SearchSpace`
  inside it) round-trips through JSON with an identical space fingerprint —
  the property that makes remote evaluation byte-deterministic.

The serve integration (plan/lease/renew/complete endpoints over a real
daemon) is smoke-tested here; the fault-injection battery lives in
``tests/test_scheduler_faults.py``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExplorationError
from repro.explore import (
    ExplorationPlan,
    ExploreConfig,
    SearchSpace,
    SchedulerError,
    ShardScheduler,
    read_store,
)
from repro.explore.scheduler import (
    LEASE_COMPLETED,
    LEASE_LIVE,
    RANGE_DONE,
    RANGE_LEASED,
    RANGE_PENDING,
)
from repro.serve import FlowServer, ServeConfig, start_in_background
from repro.serve.client import FlowServiceClient, ServeClientError
from repro.units import ms

CHEAP_SPACE = SearchSpace.for_workloads(
    ["matmul_pipeline"],
    ct_values=(ms(1), ms(5), ms(20)),
    partitioners=("list", "level"),
    sequencings=("fdh", "idh"),
)

TWO = ("latency", "throughput")


def cheap_config(**overrides) -> ExploreConfig:
    defaults = dict(
        strategy="grid", budget=CHEAP_SPACE.size, batch_size=4, objectives=TWO
    )
    defaults.update(overrides)
    return ExploreConfig(**defaults)


# ---------------------------------------------------------------------------
# The lease state machine, unit-tested
# ---------------------------------------------------------------------------

class TestLeaseProtocol:
    def test_leases_hand_out_ranges_in_order(self):
        scheduler = ShardScheduler(3, lease_timeout=10.0)
        indices = [scheduler.lease(f"w{i}", 0.0).range_index for i in range(3)]
        assert indices == [0, 1, 2]
        assert scheduler.lease("w9", 0.0) is None  # nothing pending

    def test_expired_lease_reissues_the_range(self):
        scheduler = ShardScheduler(1, lease_timeout=1.0)
        first = scheduler.lease("dead", 0.0)
        assert scheduler.lease("alive", 0.5) is None  # lease still live
        second = scheduler.lease("alive", 1.5)  # deadline 1.0 passed
        assert second is not None and second.range_index == 0
        assert scheduler.expired == 1 and scheduler.reissued == 1
        assert first.state == "expired" and second.state == LEASE_LIVE

    def test_renew_extends_a_live_lease(self):
        scheduler = ShardScheduler(1, lease_timeout=1.0)
        lease = scheduler.lease("w", 0.0)
        assert scheduler.renew(lease.lease_id, 0.9)
        # Without the renewal the lease would have expired at t=1.0.
        assert scheduler.lease("thief", 1.5) is None
        assert scheduler.renew(lease.lease_id, 2.5) is False  # now expired

    def test_steal_takes_the_longest_held_lease(self):
        scheduler = ShardScheduler(3, lease_timeout=100.0)
        scheduler.lease("w1", 0.0)
        scheduler.lease("w2", 1.0)
        scheduler.lease("w3", 2.0)
        stolen = scheduler.steal("w3", 3.0)
        assert stolen.range_index == 0 and stolen.stolen_from == "w1"
        assert scheduler.stolen == 1

    def test_steal_prefers_pending_and_never_robs_itself(self):
        scheduler = ShardScheduler(2, lease_timeout=100.0)
        scheduler.lease("w1", 0.0)
        # Range 1 is still pending: stealing degrades to an ordinary lease.
        grant = scheduler.steal("w2", 1.0)
        assert grant.range_index == 1 and grant.stolen_from == ""
        assert scheduler.stolen == 0
        # Once w2 finishes, w1 holds the only live lease left — and a
        # worker never robs itself.
        scheduler.complete(grant.lease_id, 2.0)
        assert scheduler.steal("w1", 3.0) is None

    def test_completion_dispositions(self):
        scheduler = ShardScheduler(1, lease_timeout=1.0)
        dead = scheduler.lease("dead", 0.0)
        retry = scheduler.lease("alive", 2.0)  # re-issued after expiry
        # The dead worker finishes anyway: the range is still open, so the
        # byte-identical result is accepted as a late completion...
        assert scheduler.complete(dead.lease_id, 2.5) == "late"
        # ...which revokes the re-issued live lease,
        assert scheduler.renew(retry.lease_id, 2.6) is False
        # and the re-issued worker's completion becomes a duplicate.
        assert scheduler.complete(retry.lease_id, 3.0) == "duplicate"
        assert scheduler.done
        assert scheduler.completed == 1 and scheduler.duplicates == 1
        assert len(scheduler.completions()) == 1

    def test_completing_a_live_lease_is_the_happy_path(self):
        scheduler = ShardScheduler(2, lease_timeout=10.0)
        lease = scheduler.lease("w", 0.0)
        assert scheduler.complete(lease.lease_id, 1.0) == "completed"
        assert lease.state == LEASE_COMPLETED
        assert not scheduler.done  # range 1 still pending
        assert scheduler.progress()["done"] == 1

    def test_invalid_operations_raise(self):
        with pytest.raises(SchedulerError):
            ShardScheduler(0)
        with pytest.raises(SchedulerError):
            ShardScheduler(4, lease_timeout=0.0)
        scheduler = ShardScheduler(1)
        with pytest.raises(SchedulerError):
            scheduler.lease("", 0.0)
        with pytest.raises(SchedulerError):
            scheduler.renew("lease-999999", 0.0)
        with pytest.raises(SchedulerError):
            scheduler.complete("nope", 0.0)
        assert isinstance(SchedulerError("x"), ExplorationError)

    def test_snapshot_round_trip_mid_flight(self):
        scheduler = ShardScheduler(4, lease_timeout=5.0)
        a = scheduler.lease("w1", 0.0)
        scheduler.lease("w2", 1.0)
        scheduler.complete(a.lease_id, 2.0)
        scheduler.steal("w3", 3.0)
        snapshot = scheduler.to_json_dict()
        restored = ShardScheduler.from_json_dict(
            json.loads(json.dumps(snapshot))
        )
        assert restored.to_json_dict() == snapshot
        # The restored machine keeps working where the original left off —
        # including the lease-id sequence (no aliasing of new grants).
        fresh = restored.lease("w4", 3.5)
        assert fresh.lease_id not in {
            lease["lease_id"] for lease in snapshot["leases"]
        }

    def test_malformed_snapshot_raises(self):
        with pytest.raises(SchedulerError):
            ShardScheduler.from_json_dict({"range_count": 2})
        good = ShardScheduler(2).to_json_dict()
        bad = dict(good, status=["pending"])  # wrong length
        with pytest.raises(SchedulerError):
            ShardScheduler.from_json_dict(bad)


# ---------------------------------------------------------------------------
# Property tests: arbitrary interleavings
# ---------------------------------------------------------------------------

#: One protocol event.  Lease/steal name a worker; renew/complete pick one
#: of the leases granted so far (by index); advance moves the logical clock.
events = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.integers(0, 3)),
        st.tuples(st.just("steal"), st.integers(0, 3)),
        st.tuples(st.just("renew"), st.integers(0, 63)),
        st.tuples(st.just("complete"), st.integers(0, 63)),
        st.tuples(st.just("advance"), st.integers(1, 40)),
    ),
    max_size=60,
)


def _drive(range_count: int, interleaving) -> tuple:
    """Apply one interleaving, checking invariants after every event."""
    scheduler = ShardScheduler(range_count, lease_timeout=10.0)
    now = 0.0
    granted = []
    for kind, value in interleaving:
        if kind == "lease":
            lease = scheduler.lease(f"w{value}", now)
            if lease is not None:
                granted.append(lease.lease_id)
        elif kind == "steal":
            lease = scheduler.steal(f"w{value}", now)
            if lease is not None:
                granted.append(lease.lease_id)
        elif kind == "renew" and granted:
            scheduler.renew(granted[value % len(granted)], now)
        elif kind == "complete" and granted:
            scheduler.complete(granted[value % len(granted)], now)
        elif kind == "advance":
            now += value / 4.0
        _check_invariants(scheduler)
    return scheduler, now


def _check_invariants(scheduler: ShardScheduler) -> None:
    live = scheduler.live_leases()
    # No two live leases overlap on a range.
    assert len({lease.range_index for lease in live}) == len(live)
    # pending / leased / done partition the ranges consistently.
    progress = scheduler.progress()
    assert (
        progress["pending"] + progress["leased"] + progress["done"]
        == scheduler.range_count
    )
    assert progress["leased"] == len(live)
    assert progress["done"] == len(scheduler.completions())
    # Exactly-once accounting: one completion per done range.
    indices = [completion.range_index for completion in scheduler.completions()]
    assert len(indices) == len(set(indices))
    assert scheduler.completed == len(indices)


class TestLeaseProtocolProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=8), events)
    def test_every_range_completes_exactly_once(self, range_count, interleaving):
        scheduler, now = _drive(range_count, interleaving)
        # Drain: one surviving worker leases (or steals) and completes
        # until the whole schedule is done — as a real fleet would.
        for _ in range(8 * range_count):
            if scheduler.done:
                break
            lease = scheduler.lease("finisher", now)
            if lease is None:
                lease = scheduler.steal("finisher", now)
            if lease is None:
                now += 20.0  # let a foreign lease expire
                continue
            scheduler.complete(lease.lease_id, now)
            _check_invariants(scheduler)
        assert scheduler.done
        completions = scheduler.completions()
        assert sorted(c.range_index for c in completions) == list(
            range(range_count)
        )
        assert scheduler.completed == range_count
        assert scheduler.progress()["all_done"]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=8), events)
    def test_state_round_trips_through_json_snapshot(
        self, range_count, interleaving
    ):
        scheduler, _ = _drive(range_count, interleaving)
        snapshot = scheduler.to_json_dict()
        wire = json.loads(json.dumps(snapshot))  # a real JSON round trip
        restored = ShardScheduler.from_json_dict(wire)
        assert restored.to_json_dict() == snapshot
        _check_invariants(restored)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=6), events)
    def test_range_states_are_always_a_partition(self, range_count, interleaving):
        scheduler, _ = _drive(range_count, interleaving)
        states = scheduler.to_json_dict()["status"]
        assert set(states) <= {RANGE_PENDING, RANGE_LEASED, RANGE_DONE}


# ---------------------------------------------------------------------------
# The published plan
# ---------------------------------------------------------------------------

class TestExplorationPlan:
    def test_plan_round_trips_with_identical_space_fingerprint(self):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(seed=7), range_count=6
        )
        wire = json.loads(json.dumps(plan.to_json_dict()))
        restored = ExplorationPlan.from_json_dict(wire)
        assert restored == plan
        assert restored.space.fingerprint() == CHEAP_SPACE.fingerprint()

    def test_plan_refuses_unshardable_strategies(self):
        with pytest.raises(ExplorationError):
            ExplorationPlan.from_config(
                CHEAP_SPACE, cheap_config(strategy="greedy"), range_count=4
            )
        with pytest.raises(SchedulerError):
            ExplorationPlan.from_config(CHEAP_SPACE, cheap_config(), 0)

    def test_plan_config_excludes_worker_local_fields(self):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE,
            cheap_config(workers=7, cache_dir="/tmp/somewhere"),
            range_count=2,
        )
        config = plan.explore_config(cache_dir="/elsewhere")
        assert config.workers == 0
        assert config.cache_dir == "/elsewhere"
        assert config.budget == CHEAP_SPACE.size

    def test_search_space_json_round_trip(self):
        wire = json.loads(json.dumps(CHEAP_SPACE.to_json_dict()))
        restored = SearchSpace.from_json_dict(wire)
        assert restored == CHEAP_SPACE
        assert restored.fingerprint() == CHEAP_SPACE.fingerprint()
        with pytest.raises(ExplorationError):
            SearchSpace.from_json_dict({"workloads": []})


# ---------------------------------------------------------------------------
# Serve integration
# ---------------------------------------------------------------------------

class TestSchedulerEndpoints:
    def test_plain_daemon_has_no_schedule(self):
        with start_in_background(ServeConfig(workers=1)) as handle:
            client = FlowServiceClient(handle.url)
            with pytest.raises(ServeClientError) as excinfo:
                client.scheduler_status()
            assert excinfo.value.status == 404
            assert excinfo.value.code == "no-schedule"

    def test_lease_complete_cycle_over_http(self, tmp_path):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=3
        )
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "run.jsonl", lease_timeout=30.0)
        with start_in_background(server=server) as handle:
            client = FlowServiceClient(handle.url)
            published = ExplorationPlan.from_json_dict(
                client.scheduler_plan()["plan"]
            )
            assert published == plan

            seen = set()
            for _ in range(3):
                ack = client.scheduler_lease("w0")
                assert ack["granted"] and not ack["all_done"]
                assert client.scheduler_renew(ack["lease_id"])["live"]
                seen.add(ack["range_index"])
                done = client.scheduler_complete(
                    ack["lease_id"],
                    store_data='{"kind":"meta","version":1,"space":"",'
                               '"context":{}}\n',
                )
                assert done["disposition"] == "completed"
            assert seen == {0, 1, 2}
            assert client.scheduler_lease("w0") == {
                "granted": False, "all_done": True,
                "retry_after_s": pytest.approx(1.0),
            }
            status = client.scheduler_status()
            assert status["all_done"] and status["done"] == 3
            assert status["workers_seen"] == ["w0"]

            # The streamed store bytes landed at the conventional paths
            # and are readable run stores.
            for index in range(3):
                path = tmp_path / f"run.shard-{index}-of-3.jsonl"
                assert path.exists()
                meta, records = read_store(path)
                assert records == []

            # The snapshot endpoint serves a round-trippable state.
            snapshot = client.scheduler_snapshot()
            assert ShardScheduler.from_json_dict(snapshot).done

    def test_completion_requires_exactly_one_payload(self, tmp_path):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=1
        )
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "run.jsonl")
        with start_in_background(server=server) as handle:
            client = FlowServiceClient(handle.url)
            ack = client.scheduler_lease("w")
            with pytest.raises(ServeClientError):
                client.scheduler_complete(ack["lease_id"])  # neither payload
            with pytest.raises(ServeClientError):
                client.scheduler_complete(
                    ack["lease_id"], store_data="x", store_path="y"
                )

    def test_shared_store_completion_registers_the_path(self, tmp_path):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=1
        )
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "run.jsonl")
        shared = tmp_path / "shared" / "run.shard-0-of-1.jsonl"
        shared.parent.mkdir()
        shared.write_text(
            '{"kind":"meta","version":1,"space":"","context":{}}\n',
            encoding="utf-8",
        )
        with start_in_background(server=server) as handle:
            client = FlowServiceClient(handle.url)
            ack = client.scheduler_lease("w")
            done = client.scheduler_complete(
                ack["lease_id"], store_path=str(shared)
            )
            assert done["disposition"] == "completed"
            assert done["store_path"] == str(shared)
        assert server.schedule.scheduler.store_paths() == {0: str(shared)}
