"""Tests for the content-addressed stage pipeline (repro.synth.stages/pipeline).

Covers the ISSUE-4 acceptance criteria directly:

* stage keys are stable across processes and insensitive to irrelevant
  detail (graph names), and a version bump changes the key / invalidates
  stale disk entries;
* delta (incremental) evaluation is byte-identical to a cold full-flow run
  for every builtin workload;
* a warm CT-only explore neighbourhood performs zero partition solves and
  zero HLS estimations;
* the shared cache layout is manageable through ``repro cache``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.explore import OBJECTIVES, DesignPoint, ExploreConfig, Explorer, SearchSpace
from repro.explore.objectives import evaluate_report
from repro.runtime import ArtifactStore, EngineConfig, PartitionEngine
from repro.synth import FlowEngine, StagePipeline, workload_flow_jobs
from repro.synth import stages
from repro.units import ms
from repro.workloads import get_workload, workload_names


def _plan_for(name="matmul_pipeline", ct=None, **option_overrides):
    from dataclasses import replace

    workload = get_workload(name)
    graph = workload.build_graph()
    system = workload.default_system()
    if ct is not None:
        system = system.with_reconfiguration_time(ct)
    options = workload.flow_options()
    if option_overrides:
        options = replace(options, **option_overrides)
    return stages.build_stage_plan(graph, system, options)


# ---------------------------------------------------------------------------
# Stage keys
# ---------------------------------------------------------------------------

class TestStageKeys:
    def test_plan_lists_every_pipeline_stage_in_order(self):
        plan = _plan_for()
        assert tuple(key.stage for key in plan.keys) == stages.PIPELINE_STAGES
        assert "estimate@v" in plan.describe()

    def test_keys_are_chained_through_the_dag(self):
        """Changing one axis re-keys exactly that stage and its dependents."""
        base = _plan_for()

        # A partitioner change keeps the estimate key, changes everything after.
        other = _plan_for(partitioner="level")
        assert other.digest(stages.ESTIMATE) == base.digest(stages.ESTIMATE)
        for stage in (stages.PARTITION, stages.MEMORY_MAP, stages.FISSION, stages.TIMING):
            assert other.digest(stage) != base.digest(stage)

        # A memory-rounding change keeps estimate+partition, changes the rest.
        rounded = _plan_for(round_memory_blocks=True)
        assert rounded.digest(stages.ESTIMATE) == base.digest(stages.ESTIMATE)
        assert rounded.digest(stages.PARTITION) == base.digest(stages.PARTITION)
        for stage in (stages.MEMORY_MAP, stages.FISSION, stages.TIMING):
            assert rounded.digest(stage) != base.digest(stage)

    def test_ct_only_change_shares_every_stage_key(self):
        """CT is not an input of any cached stage under the default solver."""
        a = _plan_for(ct=ms(1))
        b = _plan_for(ct=ms(50))
        assert [key.digest for key in a.keys] == [key.digest for key in b.keys]

    def test_graph_name_does_not_change_the_key(self):
        workload = get_workload("matmul_pipeline")
        system = workload.default_system()
        options = workload.flow_options()
        graph_a = workload.build_graph()
        graph_b = workload.build_graph()
        graph_b.name = "renamed"
        plan_a = stages.build_stage_plan(graph_a, system, options)
        plan_b = stages.build_stage_plan(graph_b, system, options)
        assert plan_a.digest(stages.ESTIMATE) == plan_b.digest(stages.ESTIMATE)

    def test_version_bump_changes_the_key_and_its_dependents(self, monkeypatch):
        base = _plan_for()
        monkeypatch.setitem(stages.STAGE_VERSIONS, stages.ESTIMATE, 999)
        bumped = _plan_for()
        for stage in stages.PIPELINE_STAGES:
            assert bumped.digest(stage) != base.digest(stage)
        assert bumped.key(stages.ESTIMATE).version == 999

    def test_ct_invariance_gate(self):
        assert stages.ct_invariant_solver("ilp", 0)
        assert stages.ct_invariant_solver("list", 0)
        assert stages.ct_invariant_solver("list", 3)
        assert not stages.ct_invariant_solver("ilp", 1)

    def test_ct_dependent_solver_keys_include_ct(self):
        workload = get_workload("matmul_pipeline")
        graph = workload.build_graph()
        options = workload.flow_options()
        estimate = stages.estimate_stage_key(
            graph, workload.default_system(), options
        )
        a = stages.partition_stage_key(
            estimate, workload.default_system().with_reconfiguration_time(ms(1)),
            options, explore_extra_partitions=2,
        )
        b = stages.partition_stage_key(
            estimate, workload.default_system().with_reconfiguration_time(ms(2)),
            options, explore_extra_partitions=2,
        )
        assert a.digest != b.digest

    def test_keys_stable_across_process_boundaries(self):
        """Stage digests must not depend on PYTHONHASHSEED or process state."""
        script = textwrap.dedent(
            """
            from repro.synth import build_stage_plan
            from repro.workloads import get_workload

            workload = get_workload("matmul_pipeline")
            plan = build_stage_plan(
                workload.build_graph(),
                workload.default_system(),
                workload.flow_options(),
            )
            for key in plan.keys:
                print(key.digest)
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "4242"
        env["PYTHONPATH"] = os.pathsep.join([p for p in sys.path if p] or [""])
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert child.stdout.split() == [key.digest for key in _plan_for().keys]

    def test_graph_digest_tracks_every_content_mutation(self):
        """graph_content_digest is a pure content hash: any in-place
        mutation — costs, env I/O — changes it (no stale process-wide memo)."""
        workload = get_workload("fir_filterbank")
        graph = workload.build_graph()
        before = stages.graph_content_digest(graph)
        assert stages.graph_content_digest(workload.build_graph()) == before

        estimated = stages.run_estimate(
            graph, workload.default_system(), workload.flow_options()
        )
        # run_estimate worked on a copy; the original digest is unchanged,
        # while the estimated copy hashes differently (it carries costs).
        assert stages.graph_content_digest(graph) == before
        assert stages.graph_content_digest(estimated) != before

        # In-place cost mutation changes the digest...
        name = graph.task_names()[0]
        graph.set_cost(name, estimated.task(name).cost)
        after_cost = stages.graph_content_digest(graph)
        assert after_cost != before
        # ...and so does an env-I/O mutation (invisible to any coarse salt).
        graph.set_env_io(name, env_input_words=graph.env_input_words(name) + 1)
        assert stages.graph_content_digest(graph) != after_cost

    def test_run_batch_accepts_mutated_graph_across_batches(self):
        """The per-batch digest memo must not leak across run_batch calls:
        mutating a graph between batches yields fresh stage keys."""
        workload = get_workload("fir_filterbank")
        graph = workload.build_graph()
        engine = FlowEngine()
        from repro.synth import FlowJob

        job = FlowJob(graph=graph, system=workload.default_system(),
                      options=workload.flow_options(), tag="fir")
        first = engine.run_batch([job])[0]
        assert first.ok and first.stage_sources["estimate"] == "computed"
        # Mutate the SAME graph object between batches: more env input words
        # means a different estimation problem — a stale memo would silently
        # serve the old estimate artifact as a cache hit.
        name = graph.task_names()[0]
        graph.set_env_io(name, env_input_words=graph.env_input_words(name) + 8)
        second = engine.run_batch([job])[0]
        assert second.ok
        assert second.stage_sources["estimate"] == "computed"

    def test_unknown_stage_raises(self):
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError, match="not part of this plan"):
            _plan_for().key("no-such-stage")


# ---------------------------------------------------------------------------
# The artifact store
# ---------------------------------------------------------------------------

class TestArtifactStore:
    def test_memory_roundtrip_and_stats(self):
        store = ArtifactStore()
        value, source = store.get("demo", 1, "d" * 64)
        assert value is None and source == ""
        store.put("demo", 1, "d" * 64, {"x": 1})
        value, source = store.get("demo", 1, "d" * 64)
        assert value == {"x": 1} and source == "memory-cache"
        stats = store.stats_for("demo")
        assert stats.memory_hits == 1 and stats.misses == 1 and stats.stores == 1

    def test_disk_roundtrip_with_codec(self, tmp_path):
        writer = ArtifactStore(cache_dir=tmp_path)
        writer.put("demo", 1, "e" * 64, {"y": 2}, encode=lambda v: v)
        reader = ArtifactStore(cache_dir=tmp_path)
        value, source = reader.get("demo", 1, "e" * 64, decode=lambda v: v)
        assert value == {"y": 2} and source == "disk-cache"
        assert (tmp_path / "stages" / "demo" / f"{'e' * 64}.json").is_file()

    def test_stale_version_on_disk_is_a_miss_and_removed(self, tmp_path):
        writer = ArtifactStore(cache_dir=tmp_path)
        writer.put("demo", 1, "f" * 64, {"z": 3}, encode=lambda v: v)
        path = tmp_path / "stages" / "demo" / f"{'f' * 64}.json"
        assert path.is_file()
        reader = ArtifactStore(cache_dir=tmp_path)
        value, source = reader.get("demo", 2, "f" * 64, decode=lambda v: v)
        assert value is None and source == ""
        assert not path.exists()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        path = tmp_path / "stages" / "demo" / f"{'a' * 64}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        reader = ArtifactStore(cache_dir=tmp_path)
        value, source = reader.get("demo", 1, "a" * 64, decode=lambda v: v)
        assert value is None and source == ""
        assert not path.exists()


# ---------------------------------------------------------------------------
# Delta evaluation through the flow engine
# ---------------------------------------------------------------------------

class TestDeltaEvaluation:
    def test_ct_sweep_batch_solves_once(self):
        engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        jobs = workload_flow_jobs(
            names=["matmul_pipeline"], ct_values=[ms(1), ms(5), ms(20)]
        )
        batch = engine.run_batch(jobs)
        assert batch.ok
        assert engine.stats.cache.misses == 1
        assert engine.stage_stats["estimate"]["runs"] == 1
        assert [r.partition_source for r in batch] == [
            "solve", "batch-dedup", "batch-dedup"
        ]
        # Latencies still reflect each job's own CT.
        latencies = [r.design.partitioning.total_latency for r in batch]
        assert latencies == sorted(latencies) and len(set(latencies)) == 3

    @pytest.mark.parametrize("name", sorted(workload_names(exclude_tags=("huge",))))
    def test_incremental_metrics_bit_identical_to_cold_run(self, name):
        """ISSUE-4 acceptance: delta evaluation == cold full flow, bitwise."""
        base_ct, new_ct = ms(3), ms(7)
        objectives = tuple(OBJECTIVES.values())

        warm_engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        warm_base = warm_engine.run_batch(
            workload_flow_jobs(names=[name], ct_values=[base_ct])
        )
        assert warm_base.ok, warm_base.describe(failures_only=True)
        delta = warm_engine.run_batch(
            workload_flow_jobs(names=[name], ct_values=[new_ct])
        )[0]
        assert delta.ok
        # The delta run reused every cached stage.
        assert delta.cached_stage("estimate"), delta.stage_sources
        assert delta.cached_partition, delta.stage_sources

        cold = FlowEngine(engine=PartitionEngine(EngineConfig())).run_batch(
            workload_flow_jobs(names=[name], ct_values=[new_ct])
        )[0]
        assert cold.ok

        for sequencing in ("fdh", "idh"):
            point = DesignPoint.create(name, ct=new_ct, sequencing=sequencing)
            delta_metrics = evaluate_report(delta, point, objectives)
            cold_metrics = evaluate_report(cold, point, objectives)
            assert delta_metrics == cold_metrics  # float equality = bitwise

        assert (
            delta.design.partitioning.assignment
            == cold.design.partitioning.assignment
        )
        assert (
            delta.design.partitioning.partition_delays
            == cold.design.partitioning.partition_delays
        )

    def test_estimate_artifact_served_from_disk_across_engines(self, tmp_path):
        jobs = workload_flow_jobs(names=["matmul_pipeline"])
        first = FlowEngine(config=EngineConfig(cache_dir=tmp_path))
        assert first.run_batch(jobs).ok
        second = FlowEngine(config=EngineConfig(cache_dir=tmp_path))
        report = second.run_batch(workload_flow_jobs(names=["matmul_pipeline"]))[0]
        assert report.stage_sources["estimate"] == "disk-cache"
        assert report.partition_source == "disk-cache"

    def test_version_bump_invalidates_disk_artifacts(self, tmp_path, monkeypatch):
        jobs = workload_flow_jobs(names=["matmul_pipeline"])
        assert FlowEngine(config=EngineConfig(cache_dir=tmp_path)).run_batch(jobs).ok
        monkeypatch.setitem(stages.STAGE_VERSIONS, stages.ESTIMATE, 999)
        fresh = FlowEngine(config=EngineConfig(cache_dir=tmp_path))
        report = fresh.run_batch(workload_flow_jobs(names=["matmul_pipeline"]))[0]
        assert report.stage_sources["estimate"] == "computed"
        assert fresh.stage_stats["estimate"]["runs"] == 1

    def test_row_carries_stage_times_and_sources(self):
        engine = FlowEngine()
        row = engine.run_batch(workload_flow_jobs(names=["matmul_pipeline"]))[0].row()
        for column in ("t_estimate_s", "t_partition_s", "t_memory_map_s",
                       "t_fission_s", "t_timing_s", "t_assemble_s"):
            assert column in row
        assert "estimate=computed" in row["stage_sources"]
        assert row["cached_estimate"] is False


# ---------------------------------------------------------------------------
# Explore neighbourhoods (the acceptance scenario)
# ---------------------------------------------------------------------------

class TestExploreNeighbourhoods:
    CT_AXIS = (ms(1), ms(2), ms(5), ms(10), ms(20))

    def _space(self):
        return SearchSpace.for_workloads(
            ["matmul_pipeline"],
            ct_values=self.CT_AXIS,
            partitioners=("ilp",),
            sequencings=("fdh", "idh"),
        )

    def test_warm_ct_neighbourhood_zero_solves_zero_estimations(self):
        """ISSUE-4 acceptance: a CT-only neighbourhood evaluated warm does
        zero partition solves and zero HLS estimations."""
        space = self._space()
        flow_engine = FlowEngine(engine=PartitionEngine(EngineConfig()))

        # Warm-up: evaluate ONE point (one CT, one sequencing).
        explorer = Explorer(
            space, config=ExploreConfig(budget=1, batch_size=1), flow_engine=flow_engine
        )
        warmup = explorer.run()
        assert warmup.ok and warmup.flow_evaluated == 1

        misses_before = flow_engine.stats.cache.misses
        estimate_runs_before = flow_engine.stage_stats["estimate"]["runs"]

        # The rest of the space differs from the warm point only along CT
        # and sequencing — the whole neighbourhood must be served by the
        # stage caches.
        full = Explorer(
            space,
            config=ExploreConfig(budget=space.size, batch_size=4),
            flow_engine=flow_engine,
        ).run()
        assert full.ok and full.visited == space.size

        assert flow_engine.stats.cache.misses == misses_before, (
            "warm CT-only neighbourhood re-solved the partition stage"
        )
        assert (
            flow_engine.stage_stats["estimate"]["runs"] == estimate_runs_before
        ), "warm CT-only neighbourhood re-ran the HLS estimator"
        for record in full.records:
            assert record.cache_hits() == len(stages.PIPELINE_STAGES), (
                record.stage_sources
            )

    def test_sequencing_only_neighbour_reuses_every_stage(self):
        space = self._space()
        flow_engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        base = DesignPoint.create(
            "matmul_pipeline", ct=self.CT_AXIS[0], sequencing="fdh"
        )
        neighbour = DesignPoint.create(
            "matmul_pipeline", ct=self.CT_AXIS[0], sequencing="idh"
        )
        explorer = Explorer(
            space, config=ExploreConfig(budget=2, batch_size=1), flow_engine=flow_engine
        )
        cold, _ = explorer._evaluate([(base, base.fingerprint())])
        warm, _ = explorer._evaluate([(neighbour, neighbour.fingerprint())])
        record = warm[neighbour.fingerprint()]
        assert record.ok
        # Sequencing enters only objective evaluation: every flow stage hits.
        assert record.cache_hits() == len(stages.PIPELINE_STAGES)
        # And the two points still measure differently where they should.
        base_record = cold[base.fingerprint()]
        assert record.metrics["latency"] == base_record.metrics["latency"]

    def test_stage_sources_round_trip_through_the_store(self, tmp_path):
        from repro.explore import RunStore

        space = self._space()
        path = tmp_path / "run.jsonl"
        with RunStore(path, space.fingerprint()) as store:
            result = Explorer(
                space, config=ExploreConfig(budget=4, batch_size=2), store=store
            ).run()
        assert result.ok
        with RunStore(path, space.fingerprint()) as store:
            replayed = store.replay()
        assert replayed and all(record.stage_sources for record in replayed)
        line = path.read_text(encoding="utf-8").splitlines()[1]
        assert "stage_sources" in json.loads(line)

    def test_engine_stats_include_stage_counters(self):
        result = Explorer(
            self._space(), config=ExploreConfig(budget=3, batch_size=3)
        ).run()
        assert "stage_estimate_runs" in result.engine_stats
        assert "stage_memory_map_memory_hits" in result.engine_stats


# ---------------------------------------------------------------------------
# The cache CLI
# ---------------------------------------------------------------------------

class TestCacheCli:
    def _populate(self, tmp_path):
        engine = FlowEngine(config=EngineConfig(cache_dir=tmp_path))
        assert engine.run_batch(
            workload_flow_jobs(names=["matmul_pipeline"], ct_values=[ms(1), ms(2)])
        ).ok

    def test_stats_lists_partition_and_stage_areas(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "partition" in out and "stage:estimate" in out

    def test_prune_bounds_every_area(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli_main(
            ["cache", "prune", "--max-entries", "0", "--cache-dir", str(tmp_path)]
        ) == 0
        assert not list(tmp_path.glob("*.json"))
        assert not list((tmp_path / "stages").glob("*/*.json"))

    def test_clear_removes_everything(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli_main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*.json"))
        assert not list((tmp_path / "stages").glob("*/*.json"))

    def test_stats_on_missing_root_is_ok(self, tmp_path, capsys):
        assert cli_main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "nope")]
        ) == 0
        assert "missing" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Pipeline plumbing details
# ---------------------------------------------------------------------------

class TestPipelinePlumbing:
    def test_pipeline_store_and_cache_dir_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            StagePipeline(store=ArtifactStore(), cache_dir="/tmp/x")

    def test_estimate_artifact_round_trip_is_bit_exact(self):
        workload = get_workload("fir_filterbank")
        graph = workload.build_graph()
        estimated = stages.run_estimate(
            graph, workload.default_system(), workload.flow_options()
        )
        payload = stages.estimate_artifact(estimated)
        # Through JSON, as the disk layer would store it.
        payload = json.loads(json.dumps(payload))
        rehydrated = stages.apply_estimate_artifact(graph, payload)
        for name in estimated.task_names():
            a, b = estimated.task(name), rehydrated.task(name)
            assert a.delay == b.delay
            assert a.resources.as_dict() == b.resources.as_dict()
        assert not graph.all_estimated()  # the input graph is never mutated

    def test_designflow_estimate_no_longer_mutates_its_input(self):
        from repro.synth import DesignFlow

        workload = get_workload("fir_filterbank")
        graph = workload.build_graph()
        flow = DesignFlow(workload.default_system(), workload.flow_options())
        estimated = flow.estimate(graph)
        assert estimated.all_estimated()
        assert not graph.all_estimated()

    def test_describe_stats_reports_hits(self):
        engine = FlowEngine()
        engine.run_batch(
            workload_flow_jobs(names=["matmul_pipeline"], ct_values=[ms(1), ms(2)])
        )
        text = engine.pipeline.describe_stats()
        assert "estimate 1/2" in text
