"""Multiprocess stress tests for the shared disk caches.

Two writer processes hammer the *same* key of :class:`DiskCache` (partition
outcomes) and :class:`ArtifactStore` (stage artifacts) while the parent
reads concurrently.  The writes are atomic (temp file + ``os.replace``), so
every read must observe either a miss or one complete, valid payload —
never a torn mixture — and no temporary files may survive a clean finish.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.runtime.artifacts import ArtifactStore
from repro.runtime.cache import DiskCache
from repro.runtime.jobs import JobOutcome, JobStatus

FINGERPRINT = "f" * 64
STAGE = "estimate"
STAGE_VERSION = 1
DIGEST = "d" * 64
WRITES_PER_PROCESS = 150
READS = 400


def _outcome(writer: int, iteration: int) -> JobOutcome:
    """A recognisable, internally consistent outcome for one write."""
    return JobOutcome(
        fingerprint=FINGERPRINT,
        status=JobStatus.SOLVED,
        assignment={"a": 1, "b": writer + 1},
        partition_count=writer + 1,
        total_latency=float(iteration),
        computation_latency=float(iteration),
        method=f"writer-{writer}",
        backend="stress",
    )


def _hammer_disk_cache(directory: str, writer: int) -> None:
    cache = DiskCache(directory)
    for iteration in range(WRITES_PER_PROCESS):
        cache.put(FINGERPRINT, _outcome(writer, iteration))


def _hammer_artifact_store(root: str, writer: int) -> None:
    store = ArtifactStore(cache_dir=root)
    for iteration in range(WRITES_PER_PROCESS):
        payload = {"writer": writer, "iteration": iteration, "blob": "x" * 512}
        store.put(STAGE, STAGE_VERSION, DIGEST, payload, encode=lambda value: value)


PRUNE_MAX_ENTRIES = 8
PRUNE_WRITES_PER_PROCESS = 120


def _prune_key(writer: int, iteration: int) -> str:
    """A distinct, filename-safe fingerprint per (writer, iteration)."""
    return f"{writer:02d}{iteration:05d}".ljust(64, "e")


def _hammer_pruning_cache(directory: str, writer: int) -> None:
    cache = DiskCache(directory, max_entries=PRUNE_MAX_ENTRIES)
    for iteration in range(PRUNE_WRITES_PER_PROCESS):
        cache.put(_prune_key(writer, iteration), _outcome(writer, iteration))


def _run_writers(target, args_for):
    context = multiprocessing.get_context("spawn")
    writers = [
        context.Process(target=target, args=args_for(writer)) for writer in (0, 1)
    ]
    for process in writers:
        process.start()
    return writers


def _join_all(writers):
    for process in writers:
        process.join(timeout=120)
        assert process.exitcode == 0, f"writer crashed with {process.exitcode}"


class TestDiskCacheConcurrentWriters:
    def test_same_key_writers_never_produce_a_torn_read(self, tmp_path):
        cache = DiskCache(tmp_path)
        writers = _run_writers(
            _hammer_disk_cache, lambda writer: (str(tmp_path), writer)
        )
        observed = 0
        try:
            # Wait out the spawn start-up so the read loop genuinely races
            # the writers instead of finishing before the first write lands.
            deadline = time.monotonic() + 60
            while cache.get(FINGERPRINT) is None:
                assert time.monotonic() < deadline, "writers never wrote"
                time.sleep(0.01)
            for _ in range(READS):
                outcome = cache.get(FINGERPRINT)
                if outcome is None:
                    continue  # transiently treated-as-corrupt: a miss, never an error
                observed += 1
                # Internal consistency proves the payload was not torn: the
                # partition count always matches the writer id baked into
                # the assignment by the same write.
                assert outcome.status is JobStatus.SOLVED
                assert outcome.partition_count in (1, 2)
                assert outcome.assignment["b"] == outcome.partition_count
                assert outcome.method == f"writer-{outcome.partition_count - 1}"
        finally:
            _join_all(writers)
        assert observed > 0, "the read loop never raced a completed write"
        final = cache.get(FINGERPRINT)
        assert final is not None and final.partition_count in (1, 2)
        assert not list(tmp_path.glob("*.tmp")), "temporary write files leaked"

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(FINGERPRINT, _outcome(0, 0))
        (tmp_path / f"{FINGERPRINT}.json").write_text("{ torn", encoding="utf-8")
        assert cache.get(FINGERPRINT) is None
        # The next write repairs the entry.
        cache.put(FINGERPRINT, _outcome(1, 1))
        assert cache.get(FINGERPRINT).partition_count == 2


class TestDiskCachePruningUnderConcurrency:
    """A bounded cache pruning entries out from under concurrent readers.

    Two writer processes stream *distinct* keys through a small
    ``max_entries`` bound, so every store prunes — files vanish constantly
    while the parent lists and reads them.  A read racing a prune must be
    a miss, never an error and never a torn payload; the bound must hold
    once the writers finish; and no temp files may leak.
    """

    def test_pruning_while_reading_is_a_miss_never_an_error(self, tmp_path):
        reader = DiskCache(tmp_path, max_entries=PRUNE_MAX_ENTRIES)
        writers = _run_writers(
            _hammer_pruning_cache, lambda writer: (str(tmp_path), writer)
        )
        hits = 0
        try:
            deadline = time.monotonic() + 60
            while not list(tmp_path.glob("*.json")):
                assert time.monotonic() < deadline, "writers never wrote"
                time.sleep(0.01)
            for _ in range(READS):
                # Read whatever is present *right now*: by the time the
                # read happens the pruner may already have deleted it,
                # which is exactly the race under test.
                for path in list(tmp_path.glob("*.json"))[:4]:
                    outcome = reader.get(path.stem)
                    if outcome is None:
                        continue  # pruned (or repruned) between list and read
                    hits += 1
                    assert outcome.status is JobStatus.SOLVED
                    assert outcome.partition_count in (1, 2)
                    assert outcome.assignment["b"] == outcome.partition_count
                    assert outcome.method == f"writer-{outcome.partition_count - 1}"
        finally:
            _join_all(writers)
        assert hits > 0, "the read loop never overlapped a live entry"
        # One more bounded store re-establishes the invariant regardless of
        # how the two pruners' final removals interleaved.
        reader.put(_prune_key(9, 0), _outcome(0, 0))
        remaining = list(tmp_path.glob("*.json"))
        assert len(remaining) <= PRUNE_MAX_ENTRIES
        assert not list(tmp_path.glob("*.tmp")), "temporary write files leaked"

    def test_prune_never_evicts_the_entry_just_written(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        for iteration in range(10):
            key = _prune_key(0, iteration)
            cache.put(key, _outcome(0, iteration))
            assert cache.get(key) is not None, "prune evicted its own store"
        assert len(list(tmp_path.glob("*.json"))) <= 2
        assert cache.pruned >= 8


class TestArtifactStoreConcurrentWriters:
    def test_same_stage_key_writers_never_produce_a_torn_read(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        writers = _run_writers(
            _hammer_artifact_store, lambda writer: (str(tmp_path), writer)
        )
        try:
            for _ in range(READS):
                # A fresh store per read defeats the in-process LRU, so every
                # lookup actually exercises the shared disk layer.
                reader = ArtifactStore(cache_dir=tmp_path)
                value, source = reader.get(
                    STAGE, STAGE_VERSION, DIGEST, decode=lambda payload: payload
                )
                if value is None:
                    continue
                assert source == "disk-cache"
                assert value["writer"] in (0, 1)
                assert value["blob"] == "x" * 512
                assert 0 <= value["iteration"] < WRITES_PER_PROCESS
        finally:
            _join_all(writers)
        reader = ArtifactStore(cache_dir=tmp_path)
        value, source = reader.get(
            STAGE, STAGE_VERSION, DIGEST, decode=lambda payload: payload
        )
        assert value is not None and source == "disk-cache"
        stage_dir = tmp_path / "stages" / STAGE
        assert not list(stage_dir.glob("*.tmp")), "temporary write files leaked"

    def test_version_mismatch_is_dropped_not_served(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put(STAGE, STAGE_VERSION, DIGEST, {"writer": 9}, encode=lambda v: v)
        stale = ArtifactStore(cache_dir=tmp_path)
        value, source = stale.get(
            STAGE, STAGE_VERSION + 1, DIGEST, decode=lambda payload: payload
        )
        assert value is None and source == ""
        assert not (tmp_path / "stages" / STAGE / f"{DIGEST}.json").exists()


@pytest.mark.parametrize("writers", [2, 3])
def test_interleaved_disk_and_artifact_writers(tmp_path, writers):
    """Both cache layers under one root, several writers each, no cross-talk."""
    context = multiprocessing.get_context("spawn")
    processes = []
    for writer in range(writers):
        processes.append(
            context.Process(target=_hammer_disk_cache, args=(str(tmp_path), writer))
        )
        processes.append(
            context.Process(target=_hammer_artifact_store, args=(str(tmp_path), writer))
        )
    for process in processes:
        process.start()
    _join_all(processes)
    outcome = DiskCache(tmp_path).get(FINGERPRINT)
    assert outcome is not None
    assert outcome.assignment["b"] == outcome.partition_count
    value, source = ArtifactStore(cache_dir=tmp_path).get(
        STAGE, STAGE_VERSION, DIGEST, decode=lambda payload: payload
    )
    assert value is not None and value["blob"] == "x" * 512
