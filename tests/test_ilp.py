"""Tests for the ILP modelling layer and solver backends (repro.ilp)."""

import pytest

from repro.errors import ModelError, SolverError
from repro.ilp import (
    BACKENDS,
    Model,
    Sense,
    SolveStatus,
    VarType,
    at_most_one,
    exactly_one,
    indicator_ge_sum,
    linear_sum,
    product_linearization,
    solve,
    solve_branch_and_bound,
    solve_lp,
    solve_lp_relaxation,
)


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c <= 2, binary — optimum 16 (a, b)."""
    model = Model("knapsack")
    a, b, c = (model.add_binary(name) for name in "abc")
    model.add_constraint(a + b + c <= 2)
    model.maximize(10 * a + 6 * b + 4 * c)
    return model, (a, b, c)


class TestExpressions:
    def test_variable_to_expr(self):
        model = Model()
        x = model.add_binary("x")
        expr = 2 * x + 3
        assert expr.terms[x] == 2 and expr.constant == 3

    def test_addition_of_expressions(self):
        model = Model()
        x, y = model.add_binary("x"), model.add_binary("y")
        expr = (x + y) + (x - 2)
        assert expr.terms[x] == 2 and expr.terms[y] == 1 and expr.constant == -2

    def test_rsub(self):
        model = Model()
        x = model.add_binary("x")
        expr = 5 - x
        assert expr.terms[x] == -1 and expr.constant == 5

    def test_negation(self):
        model = Model()
        x = model.add_continuous("x")
        assert (-x).terms[x] == -1

    def test_multiplying_expressions_rejected(self):
        model = Model()
        x, y = model.add_binary("x"), model.add_binary("y")
        with pytest.raises(ModelError):
            _ = x.to_expr() * y.to_expr()

    def test_linear_sum(self):
        model = Model()
        vars_ = [model.add_binary(f"x{i}") for i in range(4)]
        expr = linear_sum(vars_)
        assert all(expr.terms[v] == 1 for v in vars_)

    def test_value_evaluation(self):
        model = Model()
        x, y = model.add_continuous("x"), model.add_continuous("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 2.0, y: 1.0}) == pytest.approx(8.0)

    def test_value_missing_variable(self):
        model = Model()
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            (x + 1).value({})


class TestConstraints:
    def test_le_normalisation(self):
        model = Model()
        x = model.add_continuous("x")
        constraint = x + 3 <= 10
        assert constraint.sense is Sense.LE and constraint.rhs == pytest.approx(7)

    def test_ge_and_eq(self):
        model = Model()
        x = model.add_continuous("x")
        assert (x >= 2).sense is Sense.GE
        assert (x.to_expr() == 2).sense is Sense.EQ

    def test_satisfaction_and_violation(self):
        model = Model()
        x = model.add_continuous("x")
        constraint = x <= 5
        assert constraint.is_satisfied({x: 4.0})
        assert not constraint.is_satisfied({x: 6.0})
        assert constraint.violation({x: 6.0}) == pytest.approx(1.0)

    def test_forgot_comparison_is_clear_error(self):
        model = Model()
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            model.add_constraint(x + 1)  # type: ignore[arg-type]

    def test_as_le_pair_for_equality(self):
        model = Model()
        x = model.add_continuous("x")
        pair = (x.to_expr() == 3).as_le_pair()
        assert len(pair) == 2 and all(c.sense is Sense.LE for c in pair)


class TestModel:
    def test_duplicate_variable_name(self):
        model = Model()
        model.add_binary("x")
        with pytest.raises(ModelError):
            model.add_binary("x")

    def test_variable_lookup(self):
        model = Model()
        x = model.add_integer("x", 0, 5)
        assert model.variable("x") is x
        with pytest.raises(ModelError):
            model.variable("y")

    def test_foreign_variable_rejected(self):
        first, second = Model("a"), Model("b")
        x = first.add_binary("x")
        with pytest.raises(ModelError):
            second.add_constraint(x <= 1)

    def test_statistics(self):
        model, _ = knapsack_model()
        stats = model.statistics()
        assert stats["binary_variables"] == 3
        assert stats["constraints"] == 1

    def test_matrix_form_shapes(self):
        model, _ = knapsack_model()
        form = model.to_matrix_form()
        assert form.a_ub.shape == (1, 3)
        assert form.integrality.sum() == 3

    def test_matrix_form_negates_maximisation(self):
        model, (a, _, _) = knapsack_model()
        form = model.to_matrix_form()
        assert form.objective[a.index] == pytest.approx(-10)

    def test_is_feasible(self):
        model, (a, b, c) = knapsack_model()
        assert model.is_feasible({a: 1.0, b: 1.0, c: 0.0})
        assert not model.is_feasible({a: 1.0, b: 1.0, c: 1.0})

    def test_violated_constraints(self):
        model, (a, b, c) = knapsack_model()
        assert len(model.violated_constraints({a: 1.0, b: 1.0, c: 1.0})) == 1


class TestBackends:
    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_knapsack_optimum(self, backend):
        model, (a, b, c) = knapsack_model()
        solution = solve(model, backend=backend)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(16.0)
        assert solution.binary_value(a) and solution.binary_value(b)
        assert not solution.binary_value(c)

    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_infeasible_detected(self, backend):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 0.6)
        model.add_constraint(x <= 0.4)
        model.minimize(x)
        assert solve(model, backend=backend).status is SolveStatus.INFEASIBLE

    def test_mixed_integer_continuous(self):
        model = Model()
        x = model.add_binary("x")
        d = model.add_continuous("d", 0, 100)
        model.add_constraint(d >= 30 * x)
        model.add_constraint(x >= 1)
        model.minimize(d)
        for backend in ("scipy", "branch-and-bound"):
            solution = solve(model, backend=backend)
            assert solution.objective == pytest.approx(30.0)

    def test_simplex_backend_pure_lp(self):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y >= 4)
        model.minimize(2 * x + y)
        solution = solve(model, backend="simplex")
        assert solution.is_optimal
        assert solution.objective == pytest.approx(4.0)
        assert solution.value(y) == pytest.approx(4.0)

    def test_simplex_backend_rejects_integers(self):
        model, _ = knapsack_model()
        with pytest.raises(SolverError):
            solve(model, backend="simplex")

    def test_unknown_backend(self):
        model, _ = knapsack_model()
        with pytest.raises(SolverError):
            solve(model, backend="cplex")

    def test_backends_constant_registered(self):
        assert set(BACKENDS) == {"scipy", "branch-and-bound", "simplex"}

    def test_branch_and_bound_with_builtin_lp(self):
        model, _ = knapsack_model()
        solution = solve(model, backend="branch-and-bound", use_builtin_lp=True)
        assert solution.objective == pytest.approx(16.0)

    def test_equality_constraints(self):
        model = Model()
        x = model.add_integer("x", 0, 10)
        y = model.add_integer("y", 0, 10)
        model.add_constraint(x + y == 7)
        model.minimize(3 * x + y)
        for backend in ("scipy", "branch-and-bound"):
            solution = solve(model, backend=backend)
            assert solution.objective == pytest.approx(7.0)
            assert solution.value(x) == pytest.approx(0.0)

    def test_lp_relaxation_bounds_milp(self):
        model, _ = knapsack_model()
        relaxed = solve_lp_relaxation(model)
        exact = solve(model)
        # Relaxation of a maximisation is an upper bound.
        assert relaxed.objective >= exact.objective - 1e-9

    def test_builtin_simplex_agrees_with_scipy_relaxation(self):
        model = Model()
        x = model.add_continuous("x", 0, 4)
        y = model.add_continuous("y", 0, 4)
        model.add_constraint(2 * x + y <= 6)
        model.add_constraint(x + 3 * y <= 9)
        model.maximize(3 * x + 4 * y)
        builtin = solve_lp_relaxation(model, use_builtin=True)
        scipy_result = solve_lp_relaxation(model, use_builtin=False)
        assert builtin.objective == pytest.approx(scipy_result.objective, rel=1e-6)

    def test_simplex_detects_infeasible_lp(self):
        model = Model()
        x = model.add_continuous("x", 0, 1)
        model.add_constraint(x >= 2)
        model.minimize(x)
        form = model.to_matrix_form()
        assert solve_lp(form).status is SolveStatus.INFEASIBLE

    def test_simplex_handles_equalities(self):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y == 5)
        model.minimize(x)
        form = model.to_matrix_form()
        result = solve_lp(form)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)

    def test_branch_and_bound_node_limit_reports_limit(self):
        model = Model()
        variables = [model.add_binary(f"x{i}") for i in range(12)]
        model.add_constraint(linear_sum(variables) <= 6)
        model.maximize(linear_sum([(i % 3 + 1) * v for i, v in enumerate(variables)]))
        solution = solve_branch_and_bound(model, max_nodes=1)
        assert solution.status in (SolveStatus.ITERATION_LIMIT, SolveStatus.OPTIMAL)


class TestLinearisation:
    def test_product_linearization_forces_conjunction(self):
        model = Model()
        x, y, z = model.add_binary("x"), model.add_binary("y"), model.add_binary("z")
        product_linearization(model, z, x, y)
        model.add_constraint(x >= 1)
        model.add_constraint(y >= 1)
        model.minimize(z)
        assert solve(model).value(z) == pytest.approx(1.0)

    def test_product_linearization_upper_bounds(self):
        model = Model()
        x, y, z = model.add_binary("x"), model.add_binary("y"), model.add_binary("z")
        product_linearization(model, z, x, y)
        model.add_constraint(x <= 0)
        model.maximize(z)
        assert solve(model).value(z) == pytest.approx(0.0)

    def test_product_linearization_rejects_non_binary(self):
        model = Model()
        x = model.add_continuous("x", 0, 5)
        y, z = model.add_binary("y"), model.add_binary("z")
        with pytest.raises(ModelError):
            product_linearization(model, z, x, y)

    def test_indicator_ge_sum(self):
        model = Model()
        group_a = [model.add_binary(f"a{i}") for i in range(3)]
        group_b = [model.add_binary(f"b{i}") for i in range(3)]
        w = model.add_binary("w")
        exactly_one(model, group_a)
        exactly_one(model, group_b)
        indicator_ge_sum(model, w, group_a[:2], group_b[2:])
        # Force a0 and b2 to be chosen: w must become 1.
        model.add_constraint(group_a[0] >= 1)
        model.add_constraint(group_b[2] >= 1)
        model.minimize(w)
        assert solve(model).value(w) == pytest.approx(1.0)

    def test_exactly_one_and_at_most_one(self):
        model = Model()
        variables = [model.add_binary(f"x{i}") for i in range(4)]
        exactly_one(model, variables)
        at_most_one(model, variables[:2])
        model.maximize(linear_sum(variables))
        solution = solve(model)
        assert solution.objective == pytest.approx(1.0)

    def test_empty_groups_rejected(self):
        model = Model()
        w = model.add_binary("w")
        with pytest.raises(ModelError):
            indicator_ge_sum(model, w, [], [w])
        with pytest.raises(ModelError):
            exactly_one(model, [])


class TestSolutionObject:
    def test_value_by_name(self):
        model, (a, _, _) = knapsack_model()
        solution = solve(model)
        assert solution.value_by_name("a") == solution.value(a)
        with pytest.raises(ModelError):
            solution.value_by_name("zzz")

    def test_binary_value_rejects_fractional(self):
        from repro.ilp import Solution, Variable

        x = Variable("x", 0, VarType.BINARY)
        solution = Solution(status=SolveStatus.OPTIMAL, values={x: 0.5})
        with pytest.raises(ModelError):
            solution.binary_value(x)

    def test_rounded_values(self):
        model, _ = knapsack_model()
        values = solve(model).rounded_values()
        assert set(values) == {"a", "b", "c"}
