"""Tests for the design-flow service daemon (``repro serve``).

Three layers:

* protocol unit tests — request keys, strict submission parsing, the
  byte-stable deterministic result subset;
* queue unit tests — dedup dispositions, priority order, back-pressure,
  cancellation and drain semantics, no HTTP involved;
* end-to-end service tests — a real daemon on a background thread
  (:func:`start_in_background`) driven through the blocking client,
  covering the error paths the wire contract promises: malformed JSON is
  a 400, an unknown workload a 404, a full queue a 429 with a retry hint,
  a crashing workload a structured failure, and a graceful shutdown
  drains everything it already accepted.

The slow-path tests use a *gated* workload whose builder blocks on a
:class:`threading.Event` until the test releases it — the daemon runs in
this process, so the gate is shared and there are no sleeps to tune.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.errors import ReproError
from repro.serve import (
    PROTOCOL_VERSION,
    FlowServiceClient,
    JobQueue,
    JobSpec,
    JobState,
    ProtocolError,
    QueueClosedError,
    QueueFullError,
    ServeClientError,
    ServeConfig,
    deterministic_result,
    encode_result,
    start_in_background,
)
from repro.serve.protocol import parse_json_body, submissions_from_body
from repro.serve.queue import ProtocolUnknownJob
from repro.taskgraph import linear_pipeline
from repro.units import ns
from repro.workloads import register_workload, unregister_workload

TINY = "pytest_serve_tiny"
GATED = "pytest_serve_gated"
CRASH = "pytest_serve_crash"

#: Per-token gates the gated workload's builder blocks on; the daemon runs
#: in this process, so tests and workers share these events directly.
_GATES = {}
_GATES_LOCK = threading.Lock()


def _gate(token: int):
    with _GATES_LOCK:
        return _GATES.setdefault(
            int(token),
            {"started": threading.Event(), "release": threading.Event()},
        )


def _tiny_graph():
    return linear_pipeline([100, 100], [ns(100), ns(200)])


@pytest.fixture(scope="module", autouse=True)
def _service_workloads():
    @register_workload(TINY, description="tiny pipeline for serve tests")
    def build_tiny(**_params):
        return _tiny_graph()

    @register_workload(GATED, description="blocks until the test releases it")
    def build_gated(token=0, **_params):
        gate = _gate(token)
        gate["started"].set()
        if not gate["release"].wait(timeout=60):
            raise RuntimeError(f"gate {token} never released")
        return _tiny_graph()

    @register_workload(CRASH, description="always crashes")
    def build_crash(**_params):
        raise RuntimeError("intentional crash for the serve tests")

    yield
    for name in (TINY, GATED, CRASH):
        unregister_workload(name)


def _server(**kwargs):
    return start_in_background(ServeConfig(port=0, **kwargs))


def _raw_request(client, method, target, body=None, headers=None):
    """One raw HTTP exchange, bypassing the client's JSON encoding."""
    connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.request(method, target, body, headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, json.loads(payload) if payload else {}
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_request_key_excludes_scheduling_hints(self):
        base = JobSpec(workload="w")
        hinted = JobSpec(workload="w", priority=7, tag="urgent")
        assert base.request_key() == hinted.request_key()

    @pytest.mark.parametrize("override", [
        {"workload": "other"},
        {"seed": 1},
        {"ct_ms": 5.0},
        {"system": "xc6000"},
        {"params": {"n": 3}},
    ])
    def test_request_key_covers_every_design_field(self, override):
        assert (
            JobSpec(workload="w").request_key()
            != JobSpec(**{"workload": "w", **override}).request_key()
        )

    def test_spec_roundtrips_through_json(self):
        spec = JobSpec(workload="w", params={"n": 2}, ct_ms=3.0, seed=4,
                       priority=1, tag="t")
        assert JobSpec.from_json_dict(spec.to_json_dict()) == spec

    @pytest.mark.parametrize("payload, match", [
        ([], "must be a JSON object"),
        ({}, "missing 'workload'"),
        ({"workload": "w", "surprise": 1}, "unknown job field"),
        ({"workload": ""}, "non-empty string"),
        ({"workload": "w", "ct_ms": -1}, "positive"),
        ({"workload": "w", "ct_ms": "soon"}, "number or null"),
        ({"workload": "w", "seed": True}, "integer"),
        ({"workload": "w", "params": {1: 2}}, "string keys"),
        ({"workload": "w", "partitioner": "psychic"}, "unknown partitioner"),
    ])
    def test_strict_submission_parsing(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            JobSpec.from_json_dict(payload)

    def test_deterministic_result_strips_wall_times(self):
        row = {"workload": "w", "status": "ok", "partitions": 3, "k": 8,
               "block_delay_ns": 1.5, "total_latency_s": 2.5, "error": "",
               "wall_s": 0.123, "partition_source": "memory-cache", "tag": "x"}
        result = deterministic_result(row)
        assert "wall_s" not in result and "partition_source" not in result
        assert result["partitions"] == 3

    def test_encode_result_is_byte_stable_under_key_order(self):
        row_a = {"workload": "w", "status": "ok", "partitions": 1}
        row_b = dict(reversed(list(row_a.items())))
        assert encode_result(row_a) == encode_result(row_b)

    def test_parse_json_body_maps_errors(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_json_body(b"{ nope")
        oversized = ProtocolError("x")
        with pytest.raises(ProtocolError) as caught:
            parse_json_body(b"x" * (2 << 20))
        assert caught.value.status == 413
        assert oversized.status == 400  # default stays a plain 400

    def test_batch_body_must_hold_jobs(self):
        with pytest.raises(ProtocolError, match="'jobs'"):
            submissions_from_body({"jobs": []})
        specs = submissions_from_body({"jobs": [{"workload": "w"}]})
        assert specs[0].workload == "w"


# ---------------------------------------------------------------------------
# Queue
# ---------------------------------------------------------------------------

class TestJobQueue:
    def test_dedup_dispositions_across_the_lifecycle(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            spec = JobSpec(workload="w")
            _, entry, first = queue.submit(spec)
            _, same, second = queue.submit(JobSpec(workload="w", tag="alias"))
            assert (first, second) == ("queued", "coalesced-inflight")
            assert same is entry and len(entry.job_ids) == 2

            running = await queue.get()
            assert running is entry and entry.state is JobState.RUNNING
            _, _, third = queue.submit(spec)
            assert third == "coalesced-inflight"

            await queue.finish(entry, {"status": "ok"})
            assert entry.state is JobState.DONE
            _, _, fourth = queue.submit(spec)
            assert fourth == "coalesced-cached"
            stats = queue.stats()
            assert stats["coalesced_inflight"] == 2
            assert stats["coalesced_cached"] == 1
            assert stats["submitted"] == 4

        asyncio.run(scenario())

    def test_priority_orders_the_heap(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            queue.submit(JobSpec(workload="low", priority=0))
            queue.submit(JobSpec(workload="high", priority=5))
            queue.submit(JobSpec(workload="mid", priority=2))
            order = [(await queue.get()).spec.workload for _ in range(3)]
            assert order == ["high", "mid", "low"]

        asyncio.run(scenario())

    def test_capacity_rejects_but_coalescing_is_free(self):
        queue = JobQueue(capacity=1)
        queue.submit(JobSpec(workload="w", seed=0))
        with pytest.raises(QueueFullError) as caught:
            queue.submit(JobSpec(workload="w", seed=1))
        assert caught.value.retry_after_s > 0
        # A duplicate of the queued entry still coalesces at full capacity.
        _, _, disposition = queue.submit(JobSpec(workload="w", seed=0))
        assert disposition == "coalesced-inflight"
        assert queue.stats()["rejected"] == 1

    def test_failed_entries_are_not_reused(self):
        async def scenario():
            queue = JobQueue(capacity=2)
            _, entry, _ = queue.submit(JobSpec(workload="w"))
            await queue.get()
            await queue.finish(entry, None, failed_stage="submit",
                               error="boom", error_kind="RuntimeError")
            assert entry.state is JobState.FAILED
            _, fresh, disposition = queue.submit(JobSpec(workload="w"))
            assert disposition == "queued" and fresh is not entry

        asyncio.run(scenario())

    def test_cancel_semantics(self):
        async def scenario():
            queue = JobQueue(capacity=4)
            first, entry, _ = queue.submit(JobSpec(workload="w"))
            second, _, _ = queue.submit(JobSpec(workload="w"))
            # Cancelling one of two attached ids leaves the entry queued.
            assert queue.cancel(first) is True
            assert entry.state is JobState.QUEUED
            assert queue.view(first)["state"] == "cancelled"
            assert queue.view(second)["state"] == "queued"
            # Cancelling the last id cancels the entry itself.
            assert queue.cancel(second) is True
            assert entry.state is JobState.CANCELLED
            assert queue.depth == 0
            # A fresh identical submission is a fresh entry.
            _, fresh, disposition = queue.submit(JobSpec(workload="w"))
            assert disposition == "queued" and fresh is not entry
            # Cancelled-while-queued entries are skipped by the worker side.
            got = await queue.get()
            assert got is fresh
            with pytest.raises(ProtocolUnknownJob):
                queue.cancel("job-999999")

        asyncio.run(scenario())

    def test_running_jobs_are_not_cancellable(self):
        async def scenario():
            queue = JobQueue(capacity=2)
            job_id, entry, _ = queue.submit(JobSpec(workload="w"))
            await queue.get()
            assert queue.cancel(job_id) is False
            assert entry.state is JobState.RUNNING

        asyncio.run(scenario())

    def test_close_refuses_submissions_and_releases_workers(self):
        async def scenario():
            queue = JobQueue(capacity=2)
            queue.close()
            with pytest.raises(QueueClosedError):
                queue.submit(JobSpec(workload="w"))
            with pytest.raises(QueueClosedError):
                await queue.get()

        asyncio.run(scenario())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            JobQueue(capacity=0)


# ---------------------------------------------------------------------------
# End-to-end service
# ---------------------------------------------------------------------------

class TestServiceEndToEnd:
    def test_submit_wait_result_roundtrip(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            health = client.health()
            assert health["status"] == "ok"
            assert health["protocol"] == PROTOCOL_VERSION
            ack = client.submit(JobSpec(workload=TINY))
            assert ack["disposition"] == "queued"
            view = client.wait(ack["job_id"], timeout=120)
            assert view["state"] == "done"
            payload = client.result(ack["job_id"])
            result = payload["result"]
            assert result["workload"] == TINY and result["status"] == "ok"
            assert result["partitions"] >= 1 and result["error"] == ""
            stats = client.stats()
            assert stats["queue"]["completed"] == 1
            assert stats["pool"]["jobs_run"] == 1

    def test_concurrent_identical_submissions_cost_one_solve(self):
        gate = _gate(11)
        with _server(workers=2) as handle:
            client = FlowServiceClient(handle.url)
            spec = JobSpec(workload=GATED, params={"token": 11})
            acks = client.submit_many([spec, spec, spec])
            dispositions = [ack["disposition"] for ack in acks]
            assert dispositions == [
                "queued", "coalesced-inflight", "coalesced-inflight"
            ]
            assert gate["started"].wait(timeout=60)
            gate["release"].set()
            results = [
                client.result(client.wait(ack["job_id"], timeout=120)["job_id"])
                for ack in acks
            ]
            # One solve served every attached job id, byte-identically.
            encoded = {encode_result(r["result"]) for r in results}
            assert len(encoded) == 1
            stats = client.stats()
            assert stats["pool"]["jobs_run"] == 1
            assert stats["queue"]["coalesced_inflight"] == 2

    def test_completed_entries_serve_later_duplicates(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            spec = JobSpec(workload=TINY)
            first = client.submit(spec)
            client.wait(first["job_id"], timeout=120)
            again = client.submit(spec)
            assert again["disposition"] == "coalesced-cached"
            assert again["state"] == "done"
            # The coalesced id's result is immediately available.
            assert client.result(again["job_id"])["result"]["status"] == "ok"
            assert client.stats()["pool"]["jobs_run"] == 1

    def test_malformed_json_is_a_400(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            status, payload = _raw_request(
                client, "POST", "/v1/jobs", b"{ this is not json",
                {"Content-Type": "application/json"},
            )
            assert status == 400
            assert payload["error"]["code"] == "bad-json"

    def test_unknown_workload_is_a_404(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            with pytest.raises(ServeClientError) as caught:
                client.submit({"workload": "definitely_not_registered"})
            assert caught.value.status == 404
            assert caught.value.code == "unknown-workload"
            assert client.stats()["queue"]["submitted"] == 0

    def test_unknown_job_unknown_route_wrong_method(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            with pytest.raises(ServeClientError) as caught:
                client.status("job-999999")
            assert caught.value.status == 404
            assert caught.value.code == "unknown-job"
            status, payload = _raw_request(client, "GET", "/v1/nowhere")
            assert status == 404 and payload["error"]["code"] == "not-found"
            status, payload = _raw_request(client, "DELETE", "/v1/jobs")
            assert status == 405
            assert payload["error"]["code"] == "method-not-allowed"

    def test_full_queue_is_a_429_with_a_retry_hint(self):
        gate = _gate(12)
        handle = _server(workers=1, queue_depth=1)
        try:
            client = FlowServiceClient(handle.url)
            running = client.submit(
                JobSpec(workload=GATED, params={"token": 12}, seed=0)
            )
            assert gate["started"].wait(timeout=60)
            queued = client.submit(
                JobSpec(workload=GATED, params={"token": 12}, seed=1)
            )
            assert queued["disposition"] == "queued"
            with pytest.raises(ServeClientError) as caught:
                client.submit(
                    JobSpec(workload=GATED, params={"token": 12}, seed=2)
                )
            assert caught.value.status == 429
            assert caught.value.code == "queue-full"
            assert caught.value.retry_after_s is not None
            assert caught.value.retry_after_s > 0
            gate["release"].set()
            assert client.wait(running["job_id"], timeout=120)["state"] == "done"
        finally:
            gate["release"].set()
            handle.shutdown()

    def test_worker_crash_becomes_a_structured_failure(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            ack = client.submit(JobSpec(workload=CRASH))
            view = client.wait(ack["job_id"], timeout=120)
            assert view["state"] == "failed"
            assert view["failed_stage"] == "submit"
            assert view["error_kind"] == "RuntimeError"
            assert "intentional crash" in view["error"]
            payload = client.result(ack["job_id"])
            assert payload["result"] is None
            assert payload["error_kind"] == "RuntimeError"
            # A failure is not a reusable result: the retry runs fresh.
            retry = client.submit(JobSpec(workload=CRASH))
            assert retry["disposition"] == "queued"

    def test_job_timeout_fails_with_the_structured_kind(self):
        gate = _gate(13)
        handle = _server(workers=1, job_timeout=0.1)
        try:
            client = FlowServiceClient(handle.url)
            ack = client.submit(JobSpec(workload=GATED, params={"token": 13}))
            assert gate["started"].wait(timeout=60)
            view = client.wait(ack["job_id"], timeout=120)
            assert view["state"] == "failed"
            assert view["error_kind"] == "JobTimeout"
            assert client.stats()["pool"]["jobs_timed_out"] == 1
        finally:
            # Un-gate the abandoned flow so the drain can join its thread.
            gate["release"].set()
            handle.shutdown()

    def test_graceful_shutdown_drains_accepted_jobs(self):
        gate = _gate(14)
        handle = _server(workers=1)
        try:
            client = FlowServiceClient(handle.url)
            inflight = client.submit(
                JobSpec(workload=GATED, params={"token": 14})
            )
            assert gate["started"].wait(timeout=60)
            queued = client.submit(JobSpec(workload=TINY))
            assert queued["disposition"] == "queued"
            assert client.shutdown()["status"] == "draining"
        finally:
            gate["release"].set()
            handle.shutdown()
        queue = handle.server.queue
        assert queue.closed
        assert queue.completed == 2
        for job_id in (inflight["job_id"], queued["job_id"]):
            assert queue.entry_for(job_id).state is JobState.DONE

    def test_cancel_a_queued_job(self):
        gate = _gate(15)
        handle = _server(workers=1)
        try:
            client = FlowServiceClient(handle.url)
            client.submit(JobSpec(workload=GATED, params={"token": 15}))
            assert gate["started"].wait(timeout=60)
            queued = client.submit(JobSpec(workload=TINY))
            view = client.cancel(queued["job_id"])
            assert view["cancelled"] is True and view["state"] == "cancelled"
            assert client.wait(queued["job_id"], timeout=30)["state"] == "cancelled"
        finally:
            gate["release"].set()
            handle.shutdown()

    def test_stream_emits_ordered_transitions(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            ack = client.submit(JobSpec(workload=TINY))
            states = [v["state"] for v in client.watch(ack["job_id"], timeout=120)]
            assert states and states[-1] == "done"
            order = ["queued", "running", "done"]
            assert states == sorted(set(states), key=order.index)

    def test_long_poll_returns_nonterminal_view_on_timeout(self):
        gate = _gate(16)
        handle = _server(workers=1)
        try:
            client = FlowServiceClient(handle.url)
            ack = client.submit(JobSpec(workload=GATED, params={"token": 16}))
            assert gate["started"].wait(timeout=60)
            status, payload = _raw_request(
                client, "GET", f"/v1/jobs/{ack['job_id']}/wait?timeout=0.05"
            )
            assert status == 200 and payload["state"] in ("queued", "running")
            status, payload = _raw_request(
                client, "GET", f"/v1/jobs/{ack['job_id']}/wait?timeout=never"
            )
            assert status == 400 and payload["error"]["code"] == "bad-timeout"
            gate["release"].set()
            assert client.wait(ack["job_id"], timeout=120)["state"] == "done"
        finally:
            gate["release"].set()
            handle.shutdown()

    def test_batch_reports_per_item_errors_inline(self):
        with _server(workers=1) as handle:
            client = FlowServiceClient(handle.url)
            acks = client.submit_many([
                {"workload": TINY},
                {"workload": "definitely_not_registered"},
            ])
            assert "job_id" in acks[0]
            assert acks[1]["error"]["code"] == "unknown-workload"
            client.wait(acks[0]["job_id"], timeout=120)

    def test_result_before_terminal_is_a_409(self):
        gate = _gate(17)
        handle = _server(workers=1)
        try:
            client = FlowServiceClient(handle.url)
            ack = client.submit(JobSpec(workload=GATED, params={"token": 17}))
            assert gate["started"].wait(timeout=60)
            with pytest.raises(ServeClientError) as caught:
                client.result(ack["job_id"])
            assert caught.value.status == 409
            assert caught.value.code == "not-finished"
        finally:
            gate["release"].set()
            handle.shutdown()


class TestServeDeterminism:
    def test_two_fresh_runs_produce_identical_result_bytes(self):
        def one_run():
            with _server(workers=2) as handle:
                client = FlowServiceClient(handle.url)
                specs = [JobSpec(workload=TINY, seed=seed) for seed in (0, 1)]
                acks = client.submit_many(specs)
                rows = []
                for ack in acks:
                    client.wait(ack["job_id"], timeout=120)
                    rows.append(client.result(ack["job_id"])["result"])
                job_ids = [ack["job_id"] for ack in acks]
                return job_ids, "\n".join(encode_result(row) for row in rows)

        ids_a, bytes_a = one_run()
        ids_b, bytes_b = one_run()
        assert ids_a == ids_b  # job ids are deterministic per daemon
        assert bytes_a == bytes_b


def test_serve_config_validation():
    # workers=0 is legal since the scheduler: a lease-only daemon that
    # runs no flow jobs of its own.  Negative counts stay errors.
    assert ServeConfig(workers=0).workers == 0
    with pytest.raises(ReproError):
        ServeConfig(workers=-1)
    with pytest.raises(ReproError):
        ServeConfig(queue_depth=0)


def test_client_rejects_non_http_urls():
    with pytest.raises(ServeClientError):
        FlowServiceClient("ftp://example.invalid")
