"""Sanity checks on documentation, packaging metadata and example scripts.

These tests keep the deliverables honest: the documents exist and mention the
pieces DESIGN.md promises, every example compiles and exposes a ``main``
function, and the public package exports what the README advertises.
"""

import importlib
import importlib.util
import py_compile
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"):
            assert (REPO_ROOT / name).is_file(), f"missing {name}"

    def test_design_lists_every_experiment(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for token in ("Table 1", "Table 2", "Figure 4", "Figure 5", "Figure 8",
                      "XC6000", "loop fission", "ILP"):
            assert token in text, f"DESIGN.md does not mention {token!r}"

    def test_experiments_records_paper_vs_measured(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for token in ("Paper", "Measured", "42", "2,048", "7,560"):
            assert token in text, f"EXPERIMENTS.md does not mention {token!r}"

    def test_readme_quickstart_mentions_key_api(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for token in ("DesignFlow", "paper_case_study_system", "build_dct_task_graph",
                      "pytest benchmarks/"):
            assert token in text


class TestExamples:
    EXAMPLES = [
        "quickstart.py",
        "jpeg_rtr_codesign.py",
        "fdh_vs_idh_strategies.py",
        "fir_filterbank_partitioning.py",
        "ilp_vs_list_partitioning.py",
        "generate_rtl_configurations.py",
        "workload_batch_flows.py",
        "explore_pareto.py",
    ]

    def test_all_examples_present(self):
        for name in self.EXAMPLES:
            assert (REPO_ROOT / "examples" / name).is_file(), f"missing example {name}"

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_examples_compile_and_define_main(self, name):
        path = REPO_ROOT / "examples" / name
        py_compile.compile(str(path), doraise=True)
        spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # importing must not run the flow
        assert callable(getattr(module, "main", None))

    def test_benchmarks_have_one_file_per_experiment(self):
        bench_dir = REPO_ROOT / "benchmarks"
        names = {path.name for path in bench_dir.glob("bench_*.py")}
        expected = {
            "bench_table1_fdh.py",
            "bench_table2_idh.py",
            "bench_ilp_partitioning.py",
            "bench_list_vs_ilp.py",
            "bench_latency_gap.py",
            "bench_loop_fission_analysis.py",
            "bench_breakeven.py",
            "bench_xc6000_conjecture.py",
            "bench_fig4_delay_estimation.py",
            "bench_fig5_strategies.py",
            "bench_fig8_dct_graph.py",
            "bench_ablation_addressing.py",
            "bench_ablation_partitioners.py",
            "bench_ablation_ct_sweep.py",
            "bench_ablation_formulation.py",
            "bench_ablation_memory_sweep.py",
            "bench_substrates.py",
            "bench_engine_scaling.py",
            "bench_flow_scaling.py",
            "bench_explore.py",
            "bench_explore_sharded.py",
            "bench_stage_cache.py",
        }
        assert expected <= names


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__ == "1.9.0"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.arch",
            "repro.dfg",
            "repro.taskgraph",
            "repro.hls",
            "repro.ilp",
            "repro.partition",
            "repro.memmap",
            "repro.fission",
            "repro.synth",
            "repro.simulate",
            "repro.jpeg",
            "repro.workloads",
            "repro.explore",
            "repro.experiments",
            "repro.serve",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_and_have_all(self, module_name):
        module = importlib.import_module(module_name)
        if module_name != "repro.cli":
            assert hasattr(module, "__all__") and module.__all__

    def test_all_exports_resolve(self):
        for module_name in (
            "repro", "repro.arch", "repro.taskgraph", "repro.partition",
            "repro.fission", "repro.jpeg", "repro.ilp", "repro.hls",
            "repro.workloads", "repro.synth", "repro.explore", "repro.serve",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_public_items_have_docstrings(self):
        """Every public class/function re-exported at package level is documented."""
        import inspect

        for module_name in ("repro.partition", "repro.fission", "repro.memmap", "repro.hls"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
