"""Tests for capabilities beyond the paper's baseline experiments.

These cover the "similar equations can be added" style extensions the paper
mentions (multiple FPGA resource types), the interaction of block rounding
with the fission analysis, optimality on the Figure-4 example, and a few
whole-flow consistency checks under estimator-derived costs.
"""

import pytest

from repro.arch import ResourceVector, generic_system, make_device
from repro.arch.board import ReconfigurableBoard, RtrSystem
from repro.arch.bus import HostLink
from repro.arch.host import HostSpec
from repro.arch.memory import single_bank
from repro.errors import FissionError
from repro.fission import analyse_fission
from repro.memmap import build_memory_map
from repro.partition import (
    IlpTemporalPartitioner,
    PartitionProblem,
    TemporalPartitioning,
    assert_valid,
)
from repro.taskgraph import Task, TaskGraph, figure4_example, figure4_partition_assignment
from repro.taskgraph.task import TaskCost
from repro.units import ms, ns


class TestMultipleResourceTypes:
    """Eq. 6 generalised: one resource constraint per resource type."""

    def _dsp_system(self):
        device = make_device(
            "XC-DSP", clb_capacity=1000, reconfiguration_time=ms(10),
            extra_resources={"dsp": 4},
        )
        board = ReconfigurableBoard(
            name="dsp-board",
            fpga=device,
            memory=single_bank(4096),
            link=HostLink("link", word_transfer_time=30e-9, handshake_time=2e-6),
        )
        return RtrSystem(board=board, host=HostSpec())

    def _graph(self):
        graph = TaskGraph("dsp-graph")
        # Six multiplier-hungry tasks: CLBs alone would fit in one partition,
        # but only 4 DSP blocks exist per configuration.
        for index in range(6):
            graph.add_task(
                Task(
                    f"mac{index}",
                    cost=TaskCost(
                        resources=ResourceVector({"clb": 100, "dsp": 2}),
                        delay=ns(400),
                    ),
                ),
                env_input_words=2,
                env_output_words=2,
            )
        return graph

    def test_dsp_blocks_force_more_partitions(self):
        system = self._dsp_system()
        graph = self._graph()
        problem = PartitionProblem.from_system(graph, system)
        # CLB-only lower bound would be 1; the DSP constraint raises it to 3.
        assert problem.minimum_partitions() == 3
        result = IlpTemporalPartitioner().partition(problem)
        assert_valid(problem, result)
        assert result.partition_count == 3
        for info in result.partitions:
            assert info.resources["dsp"] <= 4
            assert info.resources["clb"] <= 1000

    def test_validator_checks_every_resource_type(self):
        system = self._dsp_system()
        graph = self._graph()
        problem = PartitionProblem.from_system(graph, system)
        overloaded = TemporalPartitioning(
            graph=graph,
            assignment={name: 1 for name in graph.task_names()},
            partition_count=1,
            reconfiguration_time=system.reconfiguration_time,
        )
        from repro.partition import validate_partitioning

        report = validate_partitioning(problem, overloaded)
        assert any("dsp" in violation for violation in report.violations)


class TestRoundingInteraction:
    """Power-of-two rounding reduces k exactly when the limiting block is not
    already a power of two (the Section-3 trade-off)."""

    def _three_stage_graph(self, middle_words: int):
        graph = TaskGraph("rounding")
        graph.add_task(Task("a", cost=clb(100)), env_input_words=4)
        graph.add_task(Task("b", cost=clb(100)))
        graph.add_task(Task("c", cost=clb(100)), env_output_words=4)
        graph.add_edge("a", "b", words=middle_words)
        graph.add_edge("b", "c", words=middle_words)
        return graph

    def test_rounding_reduces_k_for_non_power_of_two_blocks(self):
        graph = self._three_stage_graph(middle_words=10)
        partitioning = TemporalPartitioning(
            graph=graph,
            assignment={"a": 1, "b": 2, "c": 3},
            partition_count=3,
            reconfiguration_time=0.0,
        )
        memory = 1024
        plain = analyse_fission(partitioning, memory)
        rounded = analyse_fission(partitioning, memory, round_blocks_to_power_of_two=True)
        # b's block is 10 + 10 = 20 words -> rounded to 32.
        assert plain.max_per_iteration_words == 20
        assert rounded.max_per_iteration_words == 32
        assert plain.computations_per_run == memory // 20
        assert rounded.computations_per_run == memory // 32
        assert rounded.computations_per_run < plain.computations_per_run

    def test_single_iteration_must_fit(self):
        graph = self._three_stage_graph(middle_words=600)
        partitioning = TemporalPartitioning(
            graph=graph,
            assignment={"a": 1, "b": 2, "c": 3},
            partition_count=3,
            reconfiguration_time=0.0,
        )
        with pytest.raises(FissionError):
            analyse_fission(partitioning, 1000)  # 1200-word block cannot fit


def clb(count):
    from repro.taskgraph import clb_cost

    return clb_cost(count, ns(100))


class TestFigure4Optimality:
    def test_ilp_matches_or_beats_the_figure_assignment(self):
        graph = figure4_example()
        # Capacity of 400 CLBs forces at least two partitions (700 CLBs total).
        system = generic_system(clb_capacity=400, memory_words=1024, reconfiguration_time=ms(1))
        problem = PartitionProblem.from_system(graph, system)
        ilp = IlpTemporalPartitioner().partition(problem)
        assert_valid(problem, ilp)
        figure = TemporalPartitioning(
            graph=graph,
            assignment=figure4_partition_assignment(graph),
            partition_count=2,
            reconfiguration_time=system.reconfiguration_time,
        )
        assert ilp.total_latency <= figure.total_latency + 1e-15

    def test_figure_assignment_delays(self):
        graph = figure4_example()
        figure = TemporalPartitioning(
            graph=graph,
            assignment=figure4_partition_assignment(graph),
            partition_count=2,
            reconfiguration_time=0.0,
        )
        assert figure.partition_delays == pytest.approx([ns(400), ns(300)])


class TestEstimatorDrivenCaseStudy:
    """The whole case study driven by the library's own estimates (substitute
    for DSS) rather than the paper's reported numbers."""

    @pytest.fixture(scope="class")
    def estimated_design(self, paper_system):
        from repro.jpeg import build_dct_task_graph
        from repro.synth import DesignFlow

        graph = build_dct_task_graph(attach_dfgs=True)
        for name in graph.task_names():
            graph.task(name).cost = None
        return DesignFlow(paper_system).build(graph)

    def test_t1_still_cheaper_than_t2(self, estimated_design):
        graph = estimated_design.partitioning.graph
        t1 = graph.task("t1_r0c0")
        t2 = graph.task("t2_r0c0")
        assert t1.clbs < t2.clbs
        assert t1.delay <= t2.delay

    def test_partition_structure_is_still_level_like(self, estimated_design):
        """With estimator costs the T1 tasks must still not be placed after T2
        consumers (temporal order), and each partition must fit the device."""
        partitioning = estimated_design.partitioning
        graph = partitioning.graph
        for producer, consumer in graph.edges():
            assert partitioning.partition_of(producer) <= partitioning.partition_of(consumer)
        for info in partitioning.partitions:
            assert info.clbs <= 1600

    def test_memory_and_fission_consistent(self, estimated_design):
        memory_map = build_memory_map(estimated_design.partitioning)
        limiting = max(
            memory_map.per_iteration_words(i) for i in memory_map.partition_indices
        )
        assert estimated_design.computations_per_run == 65536 // limiting
