"""End-to-end integration tests spanning every subsystem."""

import numpy as np
import pytest

from repro.arch import generic_system, paper_case_study_system
from repro.fission import SequencingStrategy, compare_static_vs_rtr
from repro.hls import TaskEstimator
from repro.jpeg import (
    JpegCodesign,
    JpegLikeCodec,
    build_dct_task_graph,
    synthetic_image,
)
from repro.memmap import build_memory_map
from repro.partition import (
    IlpTemporalPartitioner,
    ListTemporalPartitioner,
    PartitionProblem,
    assert_valid,
    compare_partitionings,
)
from repro.simulate import RtrExecutionSimulator, StaticExecutionSimulator
from repro.synth import DesignFlow, static_design_from_parameters
from repro.taskgraph import image_pipeline_task_graph, random_dsp_task_graph
from repro.units import ms, ns, us


class TestPaperPipelineEndToEnd:
    """The full paper flow, from behaviour spec to the headline numbers."""

    def test_full_flow_reproduces_headline_numbers(self, paper_system):
        # 1. Behaviour specification (Figure 8) with DSS-style estimates.
        graph = build_dct_task_graph()
        # 2-3. Temporal partitioning + loop fission via the design flow.
        design = DesignFlow(paper_system).build(graph)
        assert design.partition_count == 3
        assert design.computations_per_run == 2048
        # 4. Static baseline (paper's reported synthesis result).
        static = static_design_from_parameters(
            "static-dct", clbs=1600, cycles_per_block=160, clock_period=ns(100),
            env_input_words=16, env_output_words=16,
        )
        # 5. The per-block latency gap, ignoring reconfiguration (7 560 ns).
        assert static.block_delay - design.block_delay == pytest.approx(ns(7560))
        # 6. Timing on the largest workload: FDH loses, IDH wins by ~42 %.
        fdh = compare_static_vs_rtr(
            SequencingStrategy.FDH, static.timing_spec(), design.timing_spec, 245760, paper_system
        )
        idh = compare_static_vs_rtr(
            SequencingStrategy.IDH, static.timing_spec(), design.timing_spec, 245760, paper_system
        )
        assert not fdh.rtr_wins
        assert idh.rtr_wins
        assert idh.improvement == pytest.approx(0.42, abs=0.06)

    def test_simulator_and_analytic_model_agree_on_design_flow_output(self, paper_system):
        design = DesignFlow(paper_system).build(build_dct_task_graph())
        simulator = RtrExecutionSimulator(paper_system)
        for strategy in SequencingStrategy:
            from repro.fission import execution_time

            simulated = simulator.simulate(design.timing_spec, strategy, 10240)
            analytic = execution_time(strategy, design.timing_spec, 10240, paper_system)
            assert simulated.total_time == pytest.approx(analytic.total, rel=1e-9)

    def test_functional_correctness_of_partitioned_dct(self, case_study_ilp):
        """The partitioned hardware model computes the same DCT the codec uses."""
        codesign = JpegCodesign(case_study_ilp.partitioning)
        image = synthetic_image(16, 16, seed=5)
        codec = JpegLikeCodec(block_size=4, quality=80)
        blocks, _, _ = codec.split_blocks(image - 128.0)
        for block in blocks:
            expected = codesign.reference_block(block)
            assert np.allclose(codesign.execute_block(block), expected, atol=1e-9)

    def test_xc6000_system_end_to_end(self):
        """Swapping only the device's reconfiguration time raises the IDH win to ~47%."""
        system = paper_case_study_system(reconfiguration_time=us(500))
        design = DesignFlow(system).build(build_dct_task_graph())
        static = static_design_from_parameters(
            "static-dct", clbs=1600, cycles_per_block=160, clock_period=ns(100),
            env_input_words=16, env_output_words=16,
        )
        idh = compare_static_vs_rtr(
            SequencingStrategy.IDH, static.timing_spec(), design.timing_spec, 245760, system
        )
        assert idh.improvement == pytest.approx(0.47, abs=0.05)


class TestEstimatorDrivenFlow:
    """The same flow with the library's own estimator instead of paper numbers."""

    def test_estimated_dct_flow_is_consistent(self, paper_system):
        graph = build_dct_task_graph(attach_dfgs=True)
        for name in graph.task_names():
            graph.task(name).cost = None
        design = DesignFlow(paper_system).build(graph)
        problem = PartitionProblem.from_system(design.partitioning.graph, paper_system)
        assert_valid(problem, design.partitioning)
        # The estimator's T2 tasks are bigger than T1, so at least 2 partitions
        # are needed and the fission analysis must produce a usable k.
        assert design.partition_count >= 2
        assert design.computations_per_run >= 1
        # Memory blocks of the map must be consistent with the fission result.
        memory_map = build_memory_map(design.partitioning)
        assert memory_map.max_per_iteration_words() == max(
            design.fission.per_partition_words.values()
        )

    def test_estimator_flow_on_synthetic_graphs(self):
        system = generic_system(clb_capacity=900, memory_words=8192, reconfiguration_time=ms(5))
        for seed in (0, 3):
            graph = random_dsp_task_graph(task_count=18, seed=seed)
            design = DesignFlow(system).build(graph)
            problem = PartitionProblem.from_system(graph, system)
            assert_valid(problem, design.partitioning)
            simulator = RtrExecutionSimulator(system)
            result = simulator.simulate(design.timing_spec, SequencingStrategy.IDH, 1000)
            assert result.total_time > 0


class TestCrossPartitionerConsistency:
    def test_ilp_vs_list_on_image_pipeline(self):
        system = generic_system(clb_capacity=700, memory_words=4096, reconfiguration_time=ms(10))
        graph = image_pipeline_task_graph()
        problem = PartitionProblem.from_system(graph, system)
        ilp = IlpTemporalPartitioner().partition(problem)
        heuristic = ListTemporalPartitioner().partition(problem)
        assert_valid(problem, ilp)
        assert_valid(problem, heuristic)
        comparison = compare_partitionings(heuristic, ilp)
        assert comparison.candidate_latency <= comparison.baseline_latency + 1e-12

    def test_static_simulation_of_estimated_pipeline(self):
        system = generic_system(clb_capacity=2000, memory_words=4096, reconfiguration_time=ms(10))
        graph = image_pipeline_task_graph()
        estimator = TaskEstimator(system.fpga, max_clock_period=ns(100))
        # Static composite estimate of the whole pipeline as one datapath.
        total_delay = sum(graph.task(n).delay for n in graph.task_names())
        static = static_design_from_parameters(
            "pipeline-static",
            clbs=min(2000, graph.total_resources()["clb"]),
            cycles_per_block=max(1, int(round(total_delay / ns(100)))),
            clock_period=ns(100),
            env_input_words=graph.total_env_input_words(),
            env_output_words=graph.total_env_output_words(),
        )
        result = StaticExecutionSimulator(system).simulate(static.timing_spec(), 500)
        assert result.total_time > 0
        assert estimator is not None
