"""Tests for the experiment drivers that regenerate the paper's evaluation."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    build_case_study,
    fdh_breakeven_workload,
    paper_constants as paper,
    reconfiguration_sweep,
    reproduce_figure4,
    reproduce_figure5,
    reproduce_figure8,
    reproduce_table1,
    reproduce_table2,
    xc6000_conjecture,
)
from repro.experiments.report import comparison_row, format_table, percentage, seconds_column
from repro.experiments.table1 import paper_comparison as table1_comparison
from repro.experiments.table2 import paper_comparison as table2_comparison
from repro.units import ms, ns, us


class TestCaseStudyConstruction:
    def test_ilp_case_study_shape(self, case_study_ilp):
        assert case_study_ilp.partitioning.partition_count == paper.EXPECTED_PARTITIONS
        assert case_study_ilp.computations_per_run == paper.EXPECTED_COMPUTATIONS_PER_RUN
        assert case_study_ilp.rtr_spec.block_delay == pytest.approx(paper.RTR_BLOCK_LATENCY)
        assert case_study_ilp.static_spec.block_delay == pytest.approx(paper.STATIC_BLOCK_LATENCY)

    def test_reference_case_study_matches_ilp_latency(self, case_study_ilp, case_study_reference):
        assert case_study_reference.partitioning.computation_latency == pytest.approx(
            case_study_ilp.partitioning.computation_latency
        )

    def test_ilp_solve_time_recorded_and_reasonable(self, case_study_ilp):
        # The paper reports 3.5 s with CPLEX on a 1999 workstation; our solve
        # should complete well within an order of magnitude of that.
        assert 0 < case_study_ilp.partitioner_solve_time < 60

    def test_latency_gap_is_7560ns(self):
        assert paper.STATIC_BLOCK_LATENCY - paper.RTR_BLOCK_LATENCY == pytest.approx(ns(7560))
        assert paper.LATENCY_GAP == pytest.approx(ns(7560))


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self, case_study_reference):
        return reproduce_table1(case_study_reference)

    def test_row_count_and_order(self, table1):
        assert len(table1.rows) == 8
        blocks = [row["blocks"] for row in table1.rows]
        assert blocks == sorted(blocks, reverse=True)
        assert blocks[0] == paper.LARGEST_WORKLOAD_BLOCKS

    def test_software_loop_counts(self, table1):
        assert table1.rows[0]["I_sw"] == paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS

    def test_fdh_never_improves(self, table1):
        assert table1.fdh_ever_improves is paper.FDH_EVER_IMPROVES
        assert all(not row["rtr_wins"] for row in table1.rows)

    def test_fdh_rtr_time_dominated_by_reconfiguration(self, table1):
        largest = table1.rows[0]
        assert largest["rtr_fdh_seconds"] > 5 * largest["static_seconds"]

    def test_breakeven_blocks_same_order_as_paper(self, table1):
        assert 0.5 * paper.FDH_BREAKEVEN_BLOCKS < table1.breakeven_blocks < 1.5 * paper.FDH_BREAKEVEN_BLOCKS

    def test_fdh_breakeven_workload_none(self, case_study_reference):
        assert fdh_breakeven_workload(case_study_reference) is None

    def test_formatted_table(self, table1):
        text = table1.formatted()
        assert "Table 1" in text and "xv_file" in text

    def test_paper_comparison_rows(self, table1):
        rows = table1_comparison(table1)
        assert any(row["quantity"].startswith("FDH ever beats") for row in rows)


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self, case_study_reference):
        return reproduce_table2(case_study_reference)

    def test_improvement_at_largest_matches_paper(self, table2):
        assert table2.improvement_at_largest == pytest.approx(
            paper.IDH_IMPROVEMENT_AT_LARGEST, abs=paper.IDH_IMPROVEMENT_TOLERANCE
        )

    def test_improvement_monotonic_in_size(self, table2):
        assert table2.improvements_monotonic

    def test_small_images_do_not_benefit(self, table2):
        assert table2.rows[-1]["improvement_fraction"] < 0

    def test_xc6000_conjecture(self, table2):
        assert table2.xc6000_improvement == pytest.approx(
            paper.XC6000_IMPROVEMENT, abs=paper.XC6000_IMPROVEMENT_TOLERANCE
        )

    def test_xc6000_conjecture_function(self, case_study_reference):
        value = xc6000_conjecture(case_study_reference)
        assert value > reproduce_table2(case_study_reference).improvement_at_largest

    def test_reconfiguration_sweep_monotone(self, case_study_reference):
        rows = reconfiguration_sweep(case_study_reference, [ms(100), ms(10), ms(1), us(500)])
        improvements = [row["improvement"] for row in rows]
        assert improvements == sorted(improvements)

    def test_formatted_table(self, table2):
        assert "Table 2" in table2.formatted()

    def test_paper_comparison_rows(self, table2):
        rows = table2_comparison(table2)
        assert len(rows) == 3


class TestFigures:
    def test_figure4_matches(self):
        result = reproduce_figure4()
        assert result.matches_paper()
        assert sorted(round(d) for d in result.partition1_path_delays_ns) == [150, 350, 400]
        assert [round(d) for d in result.partition_delays_ns] == [400, 300]

    def test_figure5_strategy_contrast(self, case_study_reference):
        result = reproduce_figure5(case_study_reference)
        assert result.software_loop_count == 120
        assert result.fdh_configuration_loads == 360
        assert result.idh_configuration_loads == 3
        assert result.fdh_reconfiguration_overhead == pytest.approx(36.0)
        assert result.idh_overhead < result.fdh_reconfiguration_overhead

    def test_figure8_structure(self, case_study_reference):
        result = reproduce_figure8(case_study_reference)
        assert result.task_count == 32
        assert result.t1_count == 16 and result.t2_count == 16
        assert result.collections == 4
        assert result.tasks_per_collection == 8
        assert result.fan_in_per_t2 == 4


class TestReportHelpers:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "-" in lines[2]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_percentage(self):
        assert percentage(0.42) == "42.0%"
        assert percentage(0.4712, digits=2) == "47.12%"

    def test_seconds_column(self):
        rows = seconds_column([{"t": 0.25, "x": 1}], ["t"])
        assert rows[0]["t"] == "250.0 ms"

    def test_comparison_row(self):
        row = comparison_row(42, 43, "answer", note="close enough")
        assert row["paper"] == 42 and row["measured"] == 43


class TestCrossWorkloadSummary:
    def test_summary_covers_the_catalog_in_one_batch(self):
        from repro.experiments import (
            cross_workload_summary,
            format_cross_workload_table,
        )
        from repro.runtime import EngineConfig, PartitionEngine
        from repro.workloads import workload_names

        engine = PartitionEngine(EngineConfig())
        names = ["jpeg_dct", "matmul_pipeline", "wavelet_pyramid"]
        rows = cross_workload_summary(names=names, engine=engine)
        assert [row["workload"] for row in rows] == names
        assert all(row["status"] == "ok" for row in rows)
        assert all(row.get("matches_expected", True) for row in rows)
        jpeg = rows[0]
        assert jpeg["partitions"] == 3 and jpeg["k"] == 2048
        # ≥ 4 workloads registered overall; the summary defaults to all.
        assert len(workload_names()) >= 4
        table = format_cross_workload_table(rows)
        assert "Cross-workload" in table and "jpeg_dct" in table


class TestSanityGuards:
    def test_case_study_sanity_check_fires_on_bad_memory(self):
        from repro.arch import paper_case_study_system

        # A 1K-word memory makes k far smaller than 2048: the guard must fire.
        tiny_memory = paper_case_study_system(memory_words=1024)
        with pytest.raises(ExperimentError):
            build_case_study(use_ilp=False, system=tiny_memory)
