"""Tests for the target-architecture models (repro.arch)."""

import pytest

from repro.arch import (
    CLB,
    FpgaDevice,
    HostLink,
    HostSpec,
    MemoryBank,
    MemorySubsystem,
    ResourceVector,
    clbs,
    generic_system,
    make_device,
    paper_case_study_board,
    pci_link,
    single_bank,
    system_by_name,
    time_multiplexed_fpga,
    xc4044,
    xc6200,
    xc6200_system,
)
from repro.errors import ArchitectureError
from repro.units import ms, ns, us


class TestResourceVector:
    def test_get_missing_is_zero(self):
        assert ResourceVector({"clb": 10})["dsp"] == 0

    def test_add(self):
        total = ResourceVector({"clb": 10}) + ResourceVector({"clb": 5, "bram": 2})
        assert total["clb"] == 15 and total["bram"] == 2

    def test_scalar_multiply(self):
        assert (3 * clbs(10))["clb"] == 30

    def test_fits_within(self):
        assert clbs(100).fits_within(clbs(100))
        assert not clbs(101).fits_within(clbs(100))

    def test_fits_within_missing_resource(self):
        assert not ResourceVector({"bram": 1}).fits_within(clbs(100))

    def test_dominant_utilization(self):
        assert clbs(800).dominant_utilization(clbs(1600)) == pytest.approx(0.5)

    def test_dominant_utilization_missing_capacity_is_inf(self):
        assert ResourceVector({"bram": 1}).dominant_utilization(clbs(10)) == float("inf")

    def test_rejects_negative_amount(self):
        with pytest.raises(ArchitectureError):
            ResourceVector({"clb": -1})

    def test_names_sorted(self):
        assert ResourceVector({"b": 1, "a": 2}).names() == ("a", "b")


class TestFpgaDevice:
    def test_xc4044_parameters(self):
        device = xc4044()
        assert device.clb_count == 1600
        assert device.reconfiguration_time == pytest.approx(ms(100))
        assert device.family == "xc4000"

    def test_xc6200_reconfiguration(self):
        assert xc6200().reconfiguration_time == pytest.approx(us(500))

    def test_time_multiplexed_fpga_is_fast(self):
        assert time_multiplexed_fpga().reconfiguration_time < us(1)

    def test_supports_clock_period(self):
        device = xc4044()
        assert device.supports_clock_period(ns(50))
        assert not device.supports_clock_period(ns(1))

    def test_with_reconfiguration_time(self):
        swapped = xc4044().with_reconfiguration_time(us(500))
        assert swapped.reconfiguration_time == pytest.approx(us(500))
        assert swapped.clb_count == 1600

    def test_make_device_extra_resources(self):
        device = make_device("X", 100, ms(1), extra_resources={"bram": 4})
        assert device.capacity["bram"] == 4

    def test_rejects_negative_reconfiguration_time(self):
        with pytest.raises(ArchitectureError):
            make_device("X", 100, -1.0)

    def test_rejects_empty_capacity(self):
        with pytest.raises(ArchitectureError):
            FpgaDevice("X", "f", ResourceVector({}), ms(1))

    def test_rejects_inverted_clock_range(self):
        with pytest.raises(ArchitectureError):
            FpgaDevice("X", "f", clbs(10), ms(1), min_clock_period=ns(100), max_clock_period=ns(10))

    def test_describe_mentions_name(self):
        assert "XC4044" in xc4044().describe()


class TestMemory:
    def test_single_bank_capacity(self):
        memory = single_bank(65536, word_bits=32)
        assert memory.total_words == 65536
        assert memory.word_bits == 32

    def test_bank_capacity_bytes(self):
        assert MemoryBank("b", 1024, 32).capacity_bytes == 4096

    def test_multi_bank_total(self):
        memory = MemorySubsystem(banks=(MemoryBank("a", 100), MemoryBank("b", 200)))
        assert memory.total_words == 300
        assert memory.bank_names == ["a", "b"]

    def test_bank_lookup(self):
        memory = single_bank(100, name="bank0")
        assert memory.bank("bank0").capacity_words == 100
        with pytest.raises(ArchitectureError):
            memory.bank("nope")

    def test_rejects_duplicate_bank_names(self):
        with pytest.raises(ArchitectureError):
            MemorySubsystem(banks=(MemoryBank("a", 1), MemoryBank("a", 2)))

    def test_rejects_mixed_word_widths(self):
        with pytest.raises(ArchitectureError):
            MemorySubsystem(banks=(MemoryBank("a", 1, 32), MemoryBank("b", 1, 16)))

    def test_rejects_empty_subsystem(self):
        with pytest.raises(ArchitectureError):
            MemorySubsystem(banks=())

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ArchitectureError):
            MemoryBank("a", 0)


class TestHostLink:
    def test_pci_link_word_time(self):
        link = pci_link(frequency_hz=33e6)
        assert link.word_transfer_time == pytest.approx(1 / 33e6)

    def test_transfer_time_scales_with_words(self):
        link = HostLink("l", word_transfer_time=1e-6)
        assert link.transfer_time(100) == pytest.approx(1e-4)

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ArchitectureError):
            HostLink("l", 1e-6).transfer_time(-1)

    def test_invocation_overhead(self):
        assert HostLink("l", 1e-6, handshake_time=2e-6).invocation_overhead() == pytest.approx(2e-6)

    def test_pci_link_rejects_bad_overhead_factor(self):
        with pytest.raises(ArchitectureError):
            pci_link(protocol_overhead_factor=0.5)

    def test_rejects_negative_word_time(self):
        with pytest.raises(ArchitectureError):
            HostLink("l", -1e-9)


class TestHostSpec:
    def test_software_time(self):
        host = HostSpec(software_ops_per_second=1e6)
        assert host.software_time(500) == pytest.approx(5e-4)

    def test_sequencing_overhead(self):
        host = HostSpec(loop_iteration_overhead=1e-6)
        assert host.sequencing_overhead(1000) == pytest.approx(1e-3)

    def test_rejects_negative_operation_count(self):
        with pytest.raises(ArchitectureError):
            HostSpec().software_time(-1)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ArchitectureError):
            HostSpec().sequencing_overhead(-1)


class TestBoardAndSystem:
    def test_paper_board_constraints(self):
        board = paper_case_study_board()
        assert board.resource_capacity[CLB] == 1600
        assert board.memory_capacity_words == 65536
        assert board.reconfiguration_time == pytest.approx(ms(100))

    def test_paper_system_passthroughs(self, paper_system):
        assert paper_system.resource_capacity[CLB] == 1600
        assert paper_system.memory_capacity_words == 65536
        assert paper_system.reconfiguration_time == pytest.approx(ms(100))
        assert paper_system.word_transfer_time > 0
        assert paper_system.handshake_time >= 0

    def test_with_reconfiguration_time(self, paper_system):
        swept = paper_system.with_reconfiguration_time(us(500))
        assert swept.reconfiguration_time == pytest.approx(us(500))
        # original unchanged
        assert paper_system.reconfiguration_time == pytest.approx(ms(100))

    def test_xc6200_system(self):
        assert xc6200_system().reconfiguration_time == pytest.approx(us(500))

    def test_generic_system_parameters(self):
        system = generic_system(clb_capacity=800, memory_words=1000)
        assert system.resource_capacity[CLB] == 800
        assert system.memory_capacity_words == 1000

    def test_system_by_name(self):
        assert system_by_name("paper-xc4044").fpga.name == "XC4044"
        assert system_by_name("paper-xc6200").fpga.name == "XC6200"

    def test_system_by_name_unknown(self):
        with pytest.raises(ArchitectureError):
            system_by_name("does-not-exist")

    def test_describe_is_multiline(self, paper_system):
        text = paper_system.describe()
        assert "XC4044" in text and "host" in text
