"""Tests for the HLS estimator stack (repro.hls)."""

import pytest

from repro.arch import xc4044
from repro.dfg import OpKind, chain_dfg, fir_tap_dfg, vector_product_dfg
from repro.errors import EstimationError, SchedulingError, SynthesisError
from repro.hls import (
    ControllerPhase,
    ControllerSpec,
    TaskEstimator,
    alap_schedule,
    allocation_candidates,
    asap_schedule,
    bind_schedule,
    build_datapath,
    controller_for_schedule,
    emit_vhdl_like,
    functional_unit_class,
    library_for_family,
    list_schedule,
    merge_dfgs,
    minimal_allocation,
    mobility,
    parallelism_limited_allocation,
    required_unit_classes,
    xc4000_library,
    xc6200_library,
)
from repro.hls.layout import LayoutModel
from repro.hls.rtl import RtlDesign
from repro.jpeg import build_dct_task_graph
from repro.units import ns


class TestComponentLibrary:
    def test_adder_area_scales_with_width(self):
        library = xc4000_library()
        small = library.component_for(OpKind.ADD, 8)
        large = library.component_for(OpKind.ADD, 24)
        assert large.area_clbs > small.area_clbs

    def test_multiplier_area_quadratic(self):
        library = xc4000_library()
        nine = library.component_for(OpKind.MUL, 9)
        seventeen = library.component_for(OpKind.MUL, 17)
        assert seventeen.area_clbs > 2.5 * nine.area_clbs

    def test_multiplier_slower_than_adder(self):
        library = xc4000_library()
        assert (
            library.component_for(OpKind.MUL, 16).delay
            > library.component_for(OpKind.ADD, 16).delay
        )

    def test_component_supports_kind(self):
        library = xc4000_library()
        alu = library.component_for(OpKind.ADD, 16)
        assert alu.supports(OpKind.SUB) and not alu.supports(OpKind.MUL)

    def test_cycles_at_multicycle(self):
        library = xc4000_library()
        mul = library.component_for(OpKind.MUL, 17)
        assert mul.cycles_at(ns(20)) >= 2
        assert mul.cycles_at(ns(200)) == 1

    def test_functional_unit_classes(self):
        assert functional_unit_class(OpKind.ADD) == "alu"
        assert functional_unit_class(OpKind.MUL) == "multiplier"
        assert functional_unit_class(OpKind.MEMORY_READ) == "memory_port"

    def test_unknown_family_falls_back(self):
        library = library_for_family("virtex-9999")
        assert library.family == "virtex-9999"
        assert library.component_for(OpKind.ADD, 8).area_clbs >= 1

    def test_xc6200_library_differs(self):
        assert (
            xc6200_library().component_for(OpKind.MUL, 9).area_clbs
            >= xc4000_library().component_for(OpKind.MUL, 9).area_clbs
        )

    def test_controller_area_grows_with_states(self):
        library = xc4000_library()
        assert library.controller_area(64) > library.controller_area(4)

    def test_mux_area_grows_with_inputs(self):
        library = xc4000_library()
        assert library.mux_area(16, 8) > library.mux_area(16, 2)


class TestScheduling:
    def test_asap_respects_dependencies(self):
        dfg = vector_product_dfg(4)
        schedule = asap_schedule(dfg)
        schedule.validate_dependencies(dfg)

    def test_asap_chain_makespan(self):
        assert asap_schedule(chain_dfg(5)).makespan == 5

    def test_alap_equals_asap_makespan_by_default(self):
        dfg = vector_product_dfg(4)
        assert alap_schedule(dfg).makespan == asap_schedule(dfg).makespan

    def test_alap_with_loose_deadline(self):
        dfg = chain_dfg(3)
        schedule = alap_schedule(dfg, deadline=10)
        assert schedule.makespan <= 10
        schedule.validate_dependencies(dfg)

    def test_alap_rejects_tight_deadline(self):
        with pytest.raises(SchedulingError):
            alap_schedule(chain_dfg(5), deadline=2)

    def test_mobility_zero_on_chain_compute_ops(self):
        dfg = chain_dfg(4)
        values = mobility(dfg)
        compute_names = {op.name for op in dfg.compute_operations()}
        assert all(values[name] == 0 for name in compute_names)

    def test_mobility_nonzero_on_fir_multipliers(self):
        # In a transposed-form FIR the later taps' multipliers have slack.
        dfg = fir_tap_dfg(4)
        values = mobility(dfg)
        mul_names = [op.name for op in dfg.compute_operations() if op.kind is OpKind.MUL]
        assert any(values[name] > 0 for name in mul_names)

    def test_list_schedule_respects_unit_limits(self):
        dfg = vector_product_dfg(4)
        schedule = list_schedule(dfg, {"multiplier": 1, "alu": 1})
        assert schedule.unit_usage()["multiplier"] == 1
        schedule.validate_dependencies(dfg)

    def test_list_schedule_more_units_is_no_slower(self):
        dfg = vector_product_dfg(4)
        serial = list_schedule(dfg, {"multiplier": 1, "alu": 1})
        parallel = list_schedule(dfg, {"multiplier": 4, "alu": 2})
        assert parallel.makespan <= serial.makespan

    def test_list_schedule_multicycle_durations(self):
        dfg = vector_product_dfg(2)

        def duration_of(kind, width):
            return 3 if kind is OpKind.MUL else 1

        schedule = list_schedule(dfg, {"multiplier": 1, "alu": 1}, duration_of)
        mul_ops = [op for op in schedule.operations.values() if op.kind is OpKind.MUL]
        assert all(op.duration == 3 for op in mul_ops)
        schedule.validate_dependencies(dfg)

    def test_list_schedule_rejects_zero_units(self):
        with pytest.raises(SchedulingError):
            list_schedule(vector_product_dfg(2), {"multiplier": 0})

    def test_operations_in_cycle(self):
        schedule = list_schedule(vector_product_dfg(4), {"multiplier": 2, "alu": 1})
        for cycle in range(schedule.makespan):
            for op in schedule.operations_in_cycle(cycle):
                assert op.start_cycle <= cycle < op.end_cycle


class TestAllocation:
    def test_minimal_allocation_one_instance_per_class(self):
        allocation = minimal_allocation(vector_product_dfg(4), xc4000_library())
        assert allocation.instances == {"multiplier": 1, "alu": 1}

    def test_parallelism_limited_allocation(self):
        allocation = parallelism_limited_allocation(vector_product_dfg(4), xc4000_library())
        assert allocation.instances["multiplier"] >= 2

    def test_allocation_candidates_monotone_area(self):
        candidates = allocation_candidates(vector_product_dfg(4), xc4000_library())
        areas = [c.total_functional_area() for c in candidates]
        assert areas == sorted(areas)
        assert len(candidates) >= 2

    def test_required_unit_classes(self):
        counts = required_unit_classes(vector_product_dfg(4))
        assert counts == {"multiplier": 4, "alu": 3}

    def test_multiplier_sized_by_operand_width(self):
        # An 8x9 multiply produces a 17-bit result but is still a 9-bit multiplier.
        allocation = minimal_allocation(
            vector_product_dfg(4, input_width=8, coefficient_width=9), xc4000_library()
        )
        assert allocation.components["multiplier"].width == 9

    def test_binding_covers_all_compute_ops(self):
        dfg = vector_product_dfg(4)
        schedule = list_schedule(dfg, {"multiplier": 2, "alu": 1})
        binding = bind_schedule(schedule, dfg)
        assert set(binding.assignments) == {op.name for op in dfg.compute_operations()}

    def test_minimal_allocation_rejects_empty_dfg(self):
        from repro.dfg import DataFlowGraph, Operation

        empty = DataFlowGraph("empty")
        empty.add_operation(Operation("i", OpKind.INPUT))
        with pytest.raises(EstimationError):
            minimal_allocation(empty, xc4000_library())


class TestEstimator:
    def test_estimates_are_positive_and_fit(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        estimate = estimator.estimate_dfg(vector_product_dfg(4, 8, 9), env_io_words=5)
        assert estimate.clbs > 0
        assert estimate.cycles > 0
        assert estimate.clbs <= 1600
        assert estimate.delay == pytest.approx(estimate.cycles * estimate.clock_period)

    def test_wider_operands_cost_more(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        narrow = estimator.estimate_dfg(vector_product_dfg(4, 8, 9))
        wide = estimator.estimate_dfg(vector_product_dfg(4, 16, 17))
        assert wide.clbs > narrow.clbs
        assert wide.clock_period >= narrow.clock_period

    def test_clock_respects_user_constraint(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(60))
        estimate = estimator.estimate_dfg(vector_product_dfg(4, 16, 17))
        assert estimate.clock_period <= ns(60) + 1e-15

    def test_delay_goal_is_at_least_as_fast(self):
        area_estimator = TaskEstimator(xc4044(), max_clock_period=ns(100), goal="area")
        delay_estimator = TaskEstimator(xc4044(), max_clock_period=ns(100), goal="delay")
        dfg = vector_product_dfg(4, 8, 9)
        assert delay_estimator.estimate_dfg(dfg).delay <= area_estimator.estimate_dfg(dfg).delay + 1e-15

    def test_io_words_add_cycles(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        without = estimator.estimate_dfg(vector_product_dfg(4, 8, 9), env_io_words=0)
        with_io = estimator.estimate_dfg(vector_product_dfg(4, 8, 9), env_io_words=8)
        assert with_io.cycles == without.cycles + 8

    def test_estimate_task_graph_fills_costs(self):
        graph = build_dct_task_graph(attach_dfgs=True)
        for name in graph.task_names():
            graph.set_cost(name, graph.task(name).cost)  # keep paper costs
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        # force=False must not overwrite existing costs
        estimator.estimate_task_graph(graph)
        assert graph.task("t1_r0c0").clbs == 70
        # force=True re-estimates
        estimator.estimate_task_graph(graph, force=True)
        assert graph.task("t1_r0c0").clbs != 70

    def test_estimate_task_graph_requires_dfg_or_cost(self):
        from repro.taskgraph import Task, TaskGraph

        graph = TaskGraph("g")
        graph.add_task(Task("orphan"))
        estimator = TaskEstimator(xc4044())
        with pytest.raises(EstimationError):
            estimator.estimate_task_graph(graph)

    def test_composite_estimate_shares_units(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        dfgs = [vector_product_dfg(4, 8, 9, name=f"vp{i}") for i in range(8)]
        composite = estimator.estimate_composite(dfgs)
        individual = estimator.estimate_dfg(dfgs[0])
        # Sharing functional units: the composite is far smaller than 8x one task.
        assert composite.clbs < 8 * individual.clbs

    def test_merge_dfgs_counts(self):
        merged = merge_dfgs([vector_product_dfg(4), vector_product_dfg(4)])
        assert len(merged) == 2 * len(vector_product_dfg(4))

    def test_invalid_goal_rejected(self):
        with pytest.raises(EstimationError):
            TaskEstimator(xc4044(), goal="power")

    def test_layout_model_inflates_area(self):
        aggressive = LayoutModel(base_area_overhead=0.5, congestion_area_overhead=0.5)
        relaxed = LayoutModel(base_area_overhead=0.0, congestion_area_overhead=0.0)
        device = xc4044()
        assert aggressive.adjusted_area(1000, device) > relaxed.adjusted_area(1000, device)
        assert relaxed.adjusted_area(1000, device) == 1000

    def test_layout_model_wire_delay_grows_with_utilisation(self):
        model = LayoutModel()
        device = xc4044()
        assert model.adjusted_clock_period(ns(20), 1500, device) > model.adjusted_clock_period(
            ns(20), 100, device
        )


class TestController:
    def test_cycles_per_invocation_formula(self):
        spec = ControllerSpec("p1", datapath_states=10, iteration_bound=4)
        assert spec.cycles_per_invocation() == 1 + 4 * 11

    def test_run_to_finish_matches_formula(self):
        controller = controller_for_schedule("p1", 7, 5)
        controller.send_start()
        cycles = controller.run_to_finish()
        assert cycles == controller.spec.cycles_per_invocation()
        assert controller.finish
        assert controller.iterations_completed == 5

    def test_iteration_bound_one(self):
        controller = controller_for_schedule("p", 3, 1)
        controller.send_start()
        controller.run_to_finish()
        assert controller.iterations_completed == 1

    def test_restart_after_finish(self):
        controller = controller_for_schedule("p", 3, 2)
        controller.send_start()
        controller.run_to_finish()
        controller.send_start()
        assert not controller.finish
        controller.run_to_finish()
        assert controller.iterations_completed == 2

    def test_start_while_busy_rejected(self):
        controller = controller_for_schedule("p", 3, 2)
        controller.send_start()
        controller.step()
        with pytest.raises(SynthesisError):
            controller.send_start()

    def test_phase_progression(self):
        controller = controller_for_schedule("p", 2, 1)
        controller.send_start()
        assert controller.state.phase is ControllerPhase.RUNNING
        controller.run_to_finish()
        assert controller.state.phase is ControllerPhase.FINISHED

    def test_counter_width_must_hold_bound(self):
        with pytest.raises(SynthesisError):
            ControllerSpec("p", datapath_states=2, iteration_bound=70000, counter_width=16)

    def test_state_names(self):
        controller = controller_for_schedule("p", 3, 2)
        names = controller.state_names()
        assert names[0] == "S_START" and names[-1] == "S_CHECK_ITER"
        assert len(names) == controller.spec.total_states


class TestDatapathAndRtl:
    def _make_design(self):
        library = xc4000_library()
        dfg = vector_product_dfg(4, 8, 9, name="vp")
        allocation = minimal_allocation(dfg, library)
        schedule = list_schedule(dfg, allocation.unit_limits())
        datapath = build_datapath("vp_dp", dfg, allocation, schedule, library)
        controller = controller_for_schedule("vp_ctrl", schedule.makespan, 2048)
        return RtlDesign(
            name="config1",
            datapath=datapath,
            controller=controller,
            clock_period=ns(50),
            estimated_clbs=70,
            memory_layout={"M1": 0, "M2": 16},
        )

    def test_datapath_structure(self):
        design = self._make_design()
        counts = design.datapath.component_counts()
        assert counts["functional_units"] == 2  # one multiplier, one ALU
        assert counts["registers"] > 0
        assert counts["memory_ports"] == 1

    def test_datapath_muxes_for_shared_units(self):
        design = self._make_design()
        # Four products share one multiplier: a steering mux must exist.
        assert any("multiplier" in mux.name for mux in design.datapath.muxes)

    def test_rtl_design_properties(self):
        design = self._make_design()
        assert design.iteration_bound == 2048
        assert design.cycles_per_iteration > 0

    def test_vhdl_emission_contains_interface(self):
        text = emit_vhdl_like(self._make_design())
        assert "entity config1 is" in text
        assert "finish" in text
        assert "S_CHECK_ITER" in text
        assert "mem_addr" in text

    def test_vhdl_emission_mentions_iteration_counter(self):
        text = emit_vhdl_like(self._make_design())
        assert "iter_count" in text
        assert "iteration_bound" in text

    def test_rtl_rejects_bad_clock(self):
        design = self._make_design()
        with pytest.raises(SynthesisError):
            RtlDesign(
                name="bad",
                datapath=design.datapath,
                controller=design.controller,
                clock_period=0.0,
                estimated_clbs=1,
            )
