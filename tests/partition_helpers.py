"""Plain (non-fixture) helpers shared by the partitioning tests.

Kept outside ``conftest.py`` so test modules can import them directly:
both ``tests/`` and ``benchmarks/`` have a ``conftest.py`` and only one of
them can win the ``conftest`` module name when the whole repo is collected.
"""

from __future__ import annotations

from repro.arch import clbs
from repro.partition import PartitionProblem
from repro.units import ms


def make_problem(graph, clb_capacity=1600, memory_words=65536, ct=ms(100)):
    """Helper used across partitioning tests to build problems tersely."""
    return PartitionProblem(
        graph=graph,
        resource_capacity=clbs(clb_capacity),
        memory_words=memory_words,
        reconfiguration_time=ct,
    )
