"""Tests for temporal partitioning (repro.partition)."""

import pytest

from repro.arch import clbs
from repro.errors import PartitioningError, PartitionValidationError
from repro.ilp import SolveStatus, solve
from repro.partition import (
    MULTILEVEL_INNER_CHOICES,
    FormulationOptions,
    IlpTemporalPartitioner,
    LevelClusteringPartitioner,
    ListTemporalPartitioner,
    MultilevelPartitioner,
    PartitionProblem,
    TemporalPartitioning,
    TemporalPartitioningFormulation,
    assert_valid,
    compare_partitionings,
    compute_metrics,
    multilevel_inner,
    partition_summary_rows,
    validate_partitioning,
)
from repro.taskgraph import Task, TaskGraph, clb_cost, linear_pipeline, random_dsp_task_graph
from repro.units import ms, ns

from partition_helpers import make_problem


class TestPartitionProblem:
    def test_requires_estimated_tasks(self):
        graph = TaskGraph("g")
        graph.add_task(Task("a"))
        with pytest.raises(PartitioningError):
            make_problem(graph)

    def test_minimum_partitions(self, dct_graph):
        problem = make_problem(dct_graph)
        assert problem.minimum_partitions() == 3

    def test_from_system(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        assert problem.memory_words == 65536
        assert problem.resource_capacity["clb"] == 1600

    def test_partition_cap_default_is_task_count(self, two_task_graph):
        assert make_problem(two_task_graph).partition_cap() == 2

    def test_negative_memory_rejected(self, two_task_graph):
        with pytest.raises(PartitioningError):
            PartitionProblem(
                graph=two_task_graph,
                resource_capacity=clbs(100),
                memory_words=-1,
                reconfiguration_time=0.0,
            )


class TestResultObject:
    def _result(self, graph, assignment, partitions, ct=ms(100)):
        return TemporalPartitioning(
            graph=graph,
            assignment=assignment,
            partition_count=partitions,
            reconfiguration_time=ct,
            method="manual",
        )

    def test_partition_delay_is_longest_internal_chain(self, two_task_graph):
        same = self._result(two_task_graph, {"a": 1, "b": 1}, 1)
        assert same.partition_delays[0] == pytest.approx(ns(300))
        split = self._result(two_task_graph, {"a": 1, "b": 2}, 2)
        assert split.partition_delays == pytest.approx([ns(100), ns(200)])

    def test_total_latency_includes_reconfiguration(self, two_task_graph):
        result = self._result(two_task_graph, {"a": 1, "b": 2}, 2, ct=ms(100))
        assert result.total_latency == pytest.approx(0.2 + ns(300))

    def test_boundary_words(self, two_task_graph):
        result = self._result(two_task_graph, {"a": 1, "b": 2}, 2)
        assert result.boundary_words(1) == 4
        assert result.max_boundary_words() == 4

    def test_boundary_words_single_partition(self, two_task_graph):
        result = self._result(two_task_graph, {"a": 1, "b": 1}, 1)
        assert result.max_boundary_words() == 0

    def test_cut_edges(self, two_task_graph):
        result = self._result(two_task_graph, {"a": 1, "b": 2}, 2)
        assert result.cut_edges(1) == [("a", "b")]

    def test_incomplete_assignment_rejected(self, two_task_graph):
        with pytest.raises(PartitioningError):
            self._result(two_task_graph, {"a": 1}, 1)

    def test_out_of_range_partition_rejected(self, two_task_graph):
        with pytest.raises(PartitioningError):
            self._result(two_task_graph, {"a": 1, "b": 5}, 2)

    def test_tasks_in_partition(self, two_task_graph):
        result = self._result(two_task_graph, {"a": 1, "b": 2}, 2)
        assert result.tasks_in_partition(1) == ["a"]
        with pytest.raises(PartitioningError):
            result.tasks_in_partition(3)


class TestFormulation:
    def test_model_sizes_scale_with_bound(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        small = TemporalPartitioningFormulation(problem, 3).statistics()
        large = TemporalPartitioningFormulation(problem, 4).statistics()
        assert large["variables"] > small["variables"]
        assert large["constraints"] > small["constraints"]

    def test_single_partition_infeasible_for_dct(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        formulation = TemporalPartitioningFormulation(problem, 1)
        assert solve(formulation.model).status is SolveStatus.INFEASIBLE

    def test_two_partitions_infeasible_for_dct(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        formulation = TemporalPartitioningFormulation(problem, 2)
        assert solve(formulation.model).status is SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("order_form", ["paper", "position"])
    @pytest.mark.parametrize("linkage_form", ["aggregated", "pairwise"])
    def test_formulation_variants_agree(self, small_problem, order_form, linkage_form):
        options = FormulationOptions(order_form=order_form, linkage_form=linkage_form)
        partitioner = IlpTemporalPartitioner(options=options)
        result = partitioner.partition(small_problem)
        reference = IlpTemporalPartitioner().partition(small_problem)
        assert result.total_latency == pytest.approx(reference.total_latency)

    @pytest.mark.parametrize("delay_form", ["path", "chain"])
    def test_delay_forms_agree(self, small_problem, delay_form):
        options = FormulationOptions(delay_form=delay_form)
        result = IlpTemporalPartitioner(options=options).partition(small_problem)
        reference = IlpTemporalPartitioner().partition(small_problem)
        assert result.total_latency == pytest.approx(reference.total_latency)

    def test_invalid_options_rejected(self):
        with pytest.raises(PartitioningError):
            FormulationOptions(order_form="bogus")
        with pytest.raises(PartitioningError):
            FormulationOptions(delay_form="bogus")


class TestIlpPartitioner:
    def test_dct_case_study_partitioning(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        partitioner = IlpTemporalPartitioner()
        result = partitioner.partition(problem)
        assert_valid(problem, result)
        assert result.partition_count == 3
        sizes = sorted(info.task_count for info in result.partitions)
        assert sizes == [8, 8, 16]
        # All T1 in the first partition, T2 split 8/8 across the later two.
        first = {dct_graph.task(n).task_type for n in result.tasks_in_partition(1)}
        assert first == {"T1"}
        assert result.computation_latency == pytest.approx(ns(8440))
        report = partitioner.last_report
        assert report.chosen_bound == 3
        assert report.attempted_bounds[0] == 3

    def test_ilp_beats_list_on_dct(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        ilp = IlpTemporalPartitioner().partition(problem)
        heuristic = ListTemporalPartitioner().partition(problem)
        comparison = compare_partitionings(heuristic, ilp)
        assert comparison.candidate_wins
        assert heuristic.computation_latency == pytest.approx(ns(10960))

    def test_memory_constraint_forces_split_awareness(self):
        # Two parallel producer->consumer chains; memory too small to hold both
        # intermediate transfers across one boundary, but everything fits in
        # one partition resource-wise only if split... capacity forces 2
        # partitions; the solver must pick a cut whose traffic fits.
        graph = TaskGraph("mem")
        graph.add_task(Task("p1", cost=clb_cost(300, ns(100))), env_input_words=1)
        graph.add_task(Task("p2", cost=clb_cost(300, ns(100))), env_input_words=1)
        graph.add_task(Task("c1", cost=clb_cost(300, ns(100))), env_output_words=1)
        graph.add_task(Task("c2", cost=clb_cost(300, ns(100))), env_output_words=1)
        graph.add_edge("p1", "c1", words=30)
        graph.add_edge("p2", "c2", words=3)
        problem = make_problem(graph, clb_capacity=700, memory_words=20, ct=ms(1))
        result = IlpTemporalPartitioner().partition(problem)
        assert_valid(problem, result)
        for boundary in range(1, result.partition_count):
            assert result.boundary_words(boundary) <= 20

    def test_infeasible_memory_reported(self):
        graph = TaskGraph("impossible")
        graph.add_task(Task("a", cost=clb_cost(300, ns(100))))
        graph.add_task(Task("b", cost=clb_cost(300, ns(100))))
        graph.add_edge("a", "b", words=100)
        # Device too small for both tasks together, memory too small for the cut.
        problem = make_problem(graph, clb_capacity=400, memory_words=10, ct=ms(1))
        with pytest.raises(PartitioningError):
            IlpTemporalPartitioner().partition(problem)

    def test_relaxes_partition_bound_when_needed(self):
        # Resources allow 2 partitions, but the temporal order of a 3-chain with
        # per-task resources exceeding half the device forces 3.
        graph = linear_pipeline([400, 400, 400], [ns(100)] * 3, words_per_edge=2)
        problem = make_problem(graph, clb_capacity=500, memory_words=100, ct=ms(1))
        partitioner = IlpTemporalPartitioner()
        result = partitioner.partition(problem)
        assert result.partition_count == 3
        assert partitioner.last_report.attempted_bounds == [3]

    def test_explore_extra_partitions(self, small_problem):
        base = IlpTemporalPartitioner().partition(small_problem)
        explorer = IlpTemporalPartitioner(explore_extra_partitions=2)
        explored = explorer.partition(small_problem)
        # Exploring more bounds can never return something worse.
        assert explored.total_latency <= base.total_latency + 1e-12

    def test_single_task_graph(self):
        graph = TaskGraph("single")
        graph.add_task(Task("only", cost=clb_cost(100, ns(50))), env_input_words=1)
        problem = make_problem(graph, clb_capacity=200, memory_words=16, ct=ms(1))
        result = IlpTemporalPartitioner().partition(problem)
        assert result.partition_count == 1
        assert result.computation_latency == pytest.approx(ns(50))

    def test_branch_and_bound_backend_agrees(self, small_problem):
        scipy_result = IlpTemporalPartitioner(backend="scipy").partition(small_problem)
        bnb_result = IlpTemporalPartitioner(backend="branch-and-bound").partition(small_problem)
        assert bnb_result.total_latency == pytest.approx(scipy_result.total_latency)


class TestHeuristicPartitioners:
    def test_list_partitioner_valid_on_random_graphs(self):
        for seed in range(4):
            graph = random_dsp_task_graph(task_count=25, seed=seed)
            problem = make_problem(graph, clb_capacity=800, memory_words=4096, ct=ms(10))
            result = ListTemporalPartitioner().partition(problem)
            assert_valid(problem, result)

    def test_level_partitioner_valid_on_random_graphs(self):
        for seed in range(4):
            graph = random_dsp_task_graph(task_count=25, seed=seed)
            problem = make_problem(graph, clb_capacity=800, memory_words=4096, ct=ms(10))
            result = LevelClusteringPartitioner().partition(problem)
            assert_valid(problem, result)

    def test_ilp_never_worse_than_heuristics(self):
        for seed in (0, 1):
            graph = random_dsp_task_graph(task_count=14, seed=seed, max_level_width=4)
            problem = make_problem(graph, clb_capacity=900, memory_words=4096, ct=ms(10))
            ilp = IlpTemporalPartitioner().partition(problem)
            for heuristic in (ListTemporalPartitioner(), LevelClusteringPartitioner()):
                other = heuristic.partition(problem)
                assert ilp.total_latency <= other.total_latency + 1e-12

    def test_list_priority_rules(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        for priority in ("resource", "delay", "topological"):
            result = ListTemporalPartitioner(priority=priority).partition(problem)
            assert_valid(problem, result)

    def test_list_unknown_priority(self):
        with pytest.raises(PartitioningError):
            ListTemporalPartitioner(priority="alphabetical")

    def test_list_respects_memory_constraint(self):
        graph = linear_pipeline([200, 200, 200], [ns(100)] * 3, words_per_edge=50)
        problem = make_problem(graph, clb_capacity=250, memory_words=60, ct=ms(1))
        result = ListTemporalPartitioner().partition(problem)
        assert_valid(problem, result)


class TestMultilevelPartitioner:
    def test_valid_and_deterministic_on_a_large_graph(self):
        graph = random_dsp_task_graph(task_count=400, seed=0, max_level_width=12)
        problem = make_problem(
            graph, clb_capacity=20 * 400, memory_words=1 << 16, ct=ms(5)
        )
        partitioner = MultilevelPartitioner()
        result = partitioner.partition(problem)
        assert_valid(problem, result)

        report = partitioner.last_report
        assert report.level_sizes[0] == 400
        assert report.coarse_tasks <= partitioner.max_coarse_tasks
        assert result.method.startswith("multilevel[portfolio,")

        again = MultilevelPartitioner().partition(problem)
        assert again.assignment == result.assignment
        assert again.method == result.method

    def test_small_graph_skips_coarsening(self):
        graph = random_dsp_task_graph(task_count=12, seed=2)
        problem = make_problem(graph, clb_capacity=800, memory_words=4096, ct=ms(10))
        partitioner = MultilevelPartitioner()
        result = partitioner.partition(problem)
        assert_valid(problem, result)
        # Already below the coarse target: one level, no merge pass ran.
        assert partitioner.last_report.level_sizes == [12]
        assert result.method == "multilevel[portfolio,0lv,12t]"

    @pytest.mark.parametrize("inner", MULTILEVEL_INNER_CHOICES)
    def test_every_inner_engine_solves_the_coarse_graph(self, inner):
        graph = random_dsp_task_graph(task_count=120, seed=1, max_level_width=8)
        # 30 CLBs/task keeps the coarse packing loose enough that the exact
        # inner engines solve it in milliseconds, not minutes.
        problem = make_problem(
            graph, clb_capacity=30 * 120, memory_words=1 << 16, ct=ms(5)
        )
        partitioner = MultilevelPartitioner(inner=inner, max_coarse_tasks=12)
        result = partitioner.partition(problem)
        assert_valid(problem, result)
        assert partitioner.last_report.inner == inner
        assert result.method.startswith(f"multilevel[{inner},")

    def test_inner_name_parsing(self):
        assert multilevel_inner("multilevel") == "portfolio"
        assert multilevel_inner("multilevel:list") == "list"
        assert multilevel_inner("ilp") is None
        with pytest.raises(PartitioningError, match="unknown multilevel inner"):
            multilevel_inner("multilevel:bogus")

    def test_constructor_validation(self):
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(inner="bogus")
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(max_coarse_tasks=0)
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(cluster_cap_fraction=0.0)
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(cluster_cap_fraction=1.5)
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(max_refine_moves=-1)


class TestValidationAndMetrics:
    def test_validation_catches_order_violation(self, two_task_graph):
        problem = make_problem(two_task_graph, clb_capacity=150, memory_words=16)
        bad = TemporalPartitioning(
            graph=two_task_graph,
            assignment={"a": 2, "b": 1},
            partition_count=2,
            reconfiguration_time=ms(1),
            method="bad",
        )
        report = validate_partitioning(problem, bad)
        assert not report.is_valid
        assert any("temporal order" in violation for violation in report.violations)
        with pytest.raises(PartitionValidationError):
            report.raise_if_invalid()

    def test_validation_catches_resource_violation(self, two_task_graph):
        problem = make_problem(two_task_graph, clb_capacity=150, memory_words=16)
        bad = TemporalPartitioning(
            graph=two_task_graph,
            assignment={"a": 1, "b": 1},
            partition_count=1,
            reconfiguration_time=ms(1),
        )
        report = validate_partitioning(problem, bad)
        assert any("exceeding the capacity" in violation for violation in report.violations)

    def test_validation_catches_memory_violation(self, two_task_graph):
        problem = make_problem(two_task_graph, clb_capacity=150, memory_words=2)
        bad = TemporalPartitioning(
            graph=two_task_graph,
            assignment={"a": 1, "b": 2},
            partition_count=2,
            reconfiguration_time=ms(1),
        )
        report = validate_partitioning(problem, bad)
        assert any("memory" in violation for violation in report.violations)

    def test_metrics(self, dct_graph, paper_system):
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        result = IlpTemporalPartitioner().partition(problem)
        metrics = compute_metrics(result, problem.resource_capacity)
        assert metrics.partition_count == 3
        assert metrics.max_boundary_words == 16
        assert 0 < metrics.mean_utilisation <= 1
        assert metrics.delay_imbalance >= 1.0
        assert metrics.reconfiguration_overhead == pytest.approx(0.3)

    def test_summary_rows(self, case_study_ilp):
        rows = partition_summary_rows(case_study_ilp.partitioning)
        assert len(rows) == 3
        assert rows[0]["task_types"] == {"T1": 16}
