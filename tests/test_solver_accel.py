"""Differential properties of the solver hot-path acceleration.

Every acceleration layer added to the solver stack — the vectorised simplex
engine, the warm-started branch and bound, the symmetry/cardinality
formulation tightening and the portfolio partitioner — is required to be
*observationally identical* to the slow reference it replaced: same
objectives, same statuses, byte-identical assignments across reruns.  These
tests pin that contract on the same seeded scenario families the
differential-verification harness fuzzes (see ``tests/strategies.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import strategies as strat
from repro.arch import generic_system
from repro.errors import SolverError
from repro.ilp import Model, SolveStatus, linear_sum, solve
from repro.ilp.branch_and_bound import incumbent_vector
from repro.ilp.simplex import ENGINE_ENV_VAR, ENGINES, default_engine, solve_lp
from repro.partition import (
    AnnealTemporalPartitioner,
    FormulationOptions,
    IlpTemporalPartitioner,
    PartitionProblem,
    PortfolioPartitioner,
    validate_partitioning,
)
from repro.partition.ilp_formulation import canonical_assignment
from repro.taskgraph import (
    cardinality_lower_bound,
    interchangeable_task_classes,
    max_tasks_per_partition,
    partition_lower_bound,
)
from repro.verify.scenarios import FAMILIES, build_family_graph

SLOW = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _problem(graph, clb_capacity=700, memory_words=8192, ct=0.01):
    system = generic_system(
        clb_capacity=clb_capacity,
        memory_words=memory_words,
        reconfiguration_time=ct,
    )
    return PartitionProblem.from_system(graph, system)


# ---------------------------------------------------------------------------
# Simplex engines: vectorised vs. pure-python reference
# ---------------------------------------------------------------------------


def _random_lp(seed: int, variables: int = 6, constraints: int = 5) -> Model:
    rng = np.random.default_rng(seed)
    model = Model(f"lp-{seed}")
    xs = [
        model.add_continuous(f"x{i}", 0.0, float(rng.uniform(1.0, 10.0)))
        for i in range(variables)
    ]
    for row in range(constraints):
        coefficients = rng.uniform(0.0, 5.0, size=variables)
        model.add_constraint(
            linear_sum(float(c) * x for c, x in zip(coefficients, xs))
            <= float(rng.uniform(1.0, 20.0)),
            name=f"c{row}",
        )
    model.minimize(
        linear_sum(
            float(c) * x for c, x in zip(rng.uniform(-5.0, 5.0, size=variables), xs)
        )
    )
    return model


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_vectorised_simplex_matches_reference(seed):
    form = _random_lp(seed).to_matrix_form()
    vectorised = solve_lp(form, engine="vectorised")
    reference = solve_lp(form, engine="reference")
    assert vectorised.status is SolveStatus.OPTIMAL
    if reference.status is SolveStatus.ITERATION_LIMIT:
        # The reference engine may cycle out of budget on degenerate ties the
        # vectorised engine's exact pivot-column rewrite avoids; that is the
        # one tolerated divergence.
        return
    assert reference.status is SolveStatus.OPTIMAL
    assert vectorised.objective == pytest.approx(
        reference.objective, rel=1e-9, abs=1e-9
    )


def test_simplex_engine_selection(monkeypatch):
    form = _random_lp(0).to_matrix_form()
    with pytest.raises(SolverError, match="unknown simplex engine"):
        solve_lp(form, engine="quantum")

    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    assert default_engine() == "reference"
    monkeypatch.setenv(ENGINE_ENV_VAR, "vectorised")
    assert default_engine() == "vectorised"
    monkeypatch.setenv(ENGINE_ENV_VAR, "nonsense")
    with pytest.raises(SolverError):
        default_engine()
    monkeypatch.delenv(ENGINE_ENV_VAR)
    assert default_engine() in ENGINES


@pytest.mark.parametrize("engine", ENGINES)
def test_simplex_engines_agree_on_infeasible(engine):
    model = Model("infeasible")
    x = model.add_continuous("x", 0.0, 1.0)
    model.add_constraint(x >= 2.0)
    model.minimize(x)
    result = solve_lp(model.to_matrix_form(), engine=engine)
    assert result.status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("engine", ENGINES)
def test_simplex_engines_agree_on_unbounded(engine):
    model = Model("unbounded")
    x = model.add_continuous("x")
    model.minimize(-1.0 * x)
    result = solve_lp(model.to_matrix_form(), engine=engine)
    assert result.status is SolveStatus.UNBOUNDED


# ---------------------------------------------------------------------------
# Warm-started branch and bound vs. scipy
# ---------------------------------------------------------------------------


@given(strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=9))
@SLOW
def test_warm_started_builtin_matches_scipy(graph):
    problem = _problem(graph)
    scipy_result = IlpTemporalPartitioner().partition(problem)
    builtin = IlpTemporalPartitioner(backend="branch-and-bound").partition(problem)
    assert validate_partitioning(problem, builtin).is_valid
    assert builtin.partition_count == scipy_result.partition_count
    assert builtin.total_latency == pytest.approx(
        scipy_result.total_latency, rel=1e-9, abs=1e-12
    )


@given(strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=9))
@SLOW
def test_warm_start_does_not_change_builtin_objective(graph):
    """Warm starts prune the tree; they must never change the optimum.

    The assignments may legitimately differ (when nothing in the tree beats
    the seeded incumbent, the incumbent itself is returned), but both runs
    must land on the same objective and partition count — and each
    configuration must reproduce itself exactly.
    """
    problem = _problem(graph)
    warm = IlpTemporalPartitioner(backend="branch-and-bound").partition(problem)
    cold = IlpTemporalPartitioner(
        backend="branch-and-bound", warm_start=False
    ).partition(problem)
    assert warm.total_latency == cold.total_latency
    assert warm.partition_count == cold.partition_count
    rerun = IlpTemporalPartitioner(backend="branch-and-bound").partition(problem)
    assert rerun.assignment == warm.assignment


# ---------------------------------------------------------------------------
# Portfolio vs. the exact ILP
# ---------------------------------------------------------------------------


@given(strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=9))
@SLOW
def test_portfolio_objective_matches_ilp(graph):
    problem = _problem(graph)
    portfolio = PortfolioPartitioner().partition(problem)
    exact = IlpTemporalPartitioner().partition(problem)
    assert validate_partitioning(problem, portfolio).is_valid
    # A certified heuristic sits between the lower bound and the optimum, so
    # it can differ from the ILP's objective only by the certificate rtol.
    assert portfolio.total_latency == pytest.approx(
        exact.total_latency, rel=1e-8, abs=1e-12
    )


@given(
    strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=10),
    st.integers(min_value=0, max_value=2**16),
)
@SLOW
def test_portfolio_same_seed_same_bytes(graph, seed):
    problem = _problem(graph)
    first = PortfolioPartitioner(anneal_seed=seed).partition(problem)
    second = PortfolioPartitioner(anneal_seed=seed).partition(problem)
    assert first.assignment == second.assignment
    assert first.method == second.method
    assert repr(sorted(first.assignment.items())).encode() == repr(
        sorted(second.assignment.items())
    ).encode()


@given(
    strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=12),
    st.integers(min_value=0, max_value=2**16),
)
@SLOW
def test_anneal_same_seed_same_bytes(graph, seed):
    problem = _problem(graph)
    first = AnnealTemporalPartitioner(seed=seed, iterations=300).partition(problem)
    second = AnnealTemporalPartitioner(seed=seed, iterations=300).partition(problem)
    assert validate_partitioning(problem, first).is_valid
    assert first.assignment == second.assignment
    assert first.total_latency == second.total_latency


def test_portfolio_certificate_short_circuits_the_ilp():
    graph = build_family_graph("chain", seed=3, task_count=6)
    problem = _problem(graph, clb_capacity=1200)
    portfolio = PortfolioPartitioner()
    result = portfolio.partition(problem)
    report = portfolio.last_report
    exact = IlpTemporalPartitioner().partition(problem)
    assert result.total_latency == pytest.approx(exact.total_latency, rel=1e-9)
    if report.certified:
        assert report.ilp_report is None
        assert result.method.endswith("certified]")
    else:
        assert result.method == "portfolio[ilp,exact]"


def test_portfolio_without_certificate_always_runs_ilp():
    graph = build_family_graph("chain", seed=3, task_count=6)
    problem = _problem(graph, clb_capacity=1200)
    portfolio = PortfolioPartitioner(use_certificate=False)
    result = portfolio.partition(problem)
    assert portfolio.last_report.winner == "ilp"
    assert result.method == "portfolio[ilp,exact]"


# ---------------------------------------------------------------------------
# Preprocessing bounds
# ---------------------------------------------------------------------------


@given(strat.task_graphs(families=FAMILIES, min_tasks=2, max_tasks=16))
@settings(max_examples=25, deadline=None)
def test_cardinality_bound_is_sound(graph):
    """No valid partitioning packs more tasks per partition than the bound."""
    problem = _problem(graph)
    capacity = problem.resource_capacity
    limit = max_tasks_per_partition(graph, capacity)
    assert 1 <= limit <= len(graph)

    from repro.partition import ListTemporalPartitioner

    result = ListTemporalPartitioner().partition(problem)
    for index in range(1, result.partition_count + 1):
        assert len(result.tasks_in_partition(index)) <= limit

    lower = cardinality_lower_bound(graph, capacity)
    assert lower >= 1
    assert result.partition_count >= lower
    assert problem.minimum_partitions() >= max(
        lower, partition_lower_bound(graph, capacity)
    )


@given(strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=9))
@SLOW
def test_minimum_partitions_never_cuts_off_the_optimum(graph):
    problem = _problem(graph)
    result = IlpTemporalPartitioner().partition(problem)
    assert result.partition_count >= problem.minimum_partitions()


# ---------------------------------------------------------------------------
# Symmetry classes and canonical assignments
# ---------------------------------------------------------------------------


@given(strat.task_graphs(families=("fanout", "layered"), min_tasks=6, max_tasks=14))
@settings(max_examples=20, deadline=None)
def test_interchangeable_classes_are_really_interchangeable(graph):
    classes = interchangeable_task_classes(graph)
    for group in classes:
        assert len(group) >= 2
        first = graph.task(group[0])
        for name in group[1:]:
            other = graph.task(name)
            assert other.delay == first.delay
            assert other.resources == first.resources


@given(strat.task_graphs(families=FAMILIES, min_tasks=4, max_tasks=12))
@settings(max_examples=20, deadline=None)
def test_canonical_assignment_preserves_objective_and_validity(graph):
    from repro.partition import ListTemporalPartitioner

    problem = _problem(graph)
    result = ListTemporalPartitioner().partition(problem)
    from repro.partition import TemporalPartitioning

    canonical = canonical_assignment(graph, result.assignment)
    assert sorted(canonical.values()) == sorted(result.assignment.values())
    # Canonicalisation is idempotent and objective-preserving.
    assert canonical_assignment(graph, canonical) == canonical
    relabelled = TemporalPartitioning(
        graph=result.graph,
        assignment=canonical,
        partition_count=result.partition_count,
        reconfiguration_time=result.reconfiguration_time,
        method=result.method,
    )
    assert validate_partitioning(problem, relabelled).is_valid
    assert relabelled.total_latency == result.total_latency


def test_cardinality_cuts_do_not_change_the_optimum():
    graph = build_family_graph("layered", seed=11, task_count=8)
    problem = _problem(graph)
    plain = IlpTemporalPartitioner(
        backend="branch-and-bound", options=FormulationOptions()
    ).partition(problem)
    cut = IlpTemporalPartitioner(
        backend="branch-and-bound",
        options=FormulationOptions(symmetry_breaking=True, cardinality_cuts=True),
    ).partition(problem)
    assert cut.partition_count == plain.partition_count
    assert cut.total_latency == pytest.approx(plain.total_latency, rel=1e-12)


# ---------------------------------------------------------------------------
# Warm-start incumbent validation edge cases
# ---------------------------------------------------------------------------


def _knapsack_form():
    model = Model("knapsack")
    xs = [model.add_binary(f"x{i}") for i in range(3)]
    model.add_constraint(linear_sum(2 * x for x in xs) <= 4)
    model.maximize(linear_sum(xs))
    return model, xs


def test_incumbent_vector_accepts_feasible_point():
    model, xs = _knapsack_form()
    form = model.to_matrix_form()
    vector = incumbent_vector(form, {xs[0]: 1.0, xs[1]: 1.0, xs[2]: 0.0})
    assert vector is not None
    assert vector[xs[0].index] == 1.0 and vector[xs[2].index] == 0.0


def test_incumbent_vector_rejects_partial_assignment():
    model, xs = _knapsack_form()
    form = model.to_matrix_form()
    assert incumbent_vector(form, {xs[0]: 1.0}) is None


def test_incumbent_vector_rejects_fractional_integers():
    model, xs = _knapsack_form()
    form = model.to_matrix_form()
    assert incumbent_vector(form, {xs[0]: 0.5, xs[1]: 0.0, xs[2]: 0.0}) is None


def test_incumbent_vector_rejects_constraint_violation():
    model, xs = _knapsack_form()
    form = model.to_matrix_form()
    assert incumbent_vector(form, {x: 1.0 for x in xs}) is None


def test_incumbent_vector_rounds_near_integral_values():
    model, xs = _knapsack_form()
    form = model.to_matrix_form()
    vector = incumbent_vector(
        form, {xs[0]: 1.0 - 1e-9, xs[1]: 1e-9, xs[2]: 0.0}
    )
    assert vector is not None
    assert vector[xs[0].index] == 1.0
    assert vector[xs[1].index] == 0.0


def test_solve_with_incumbent_matches_cold_solve():
    model, xs = _knapsack_form()
    cold = solve(model, backend="branch-and-bound")
    warm = solve(
        model,
        backend="branch-and-bound",
        incumbent={xs[0]: 1.0, xs[1]: 1.0, xs[2]: 0.0},
    )
    assert warm.is_optimal and cold.is_optimal
    assert warm.objective == cold.objective
