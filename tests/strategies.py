"""Hypothesis strategies over the library's core domain objects.

These strategies are thin wrappers around the *same* seeded generators the
differential-verification harness uses (:mod:`repro.verify.scenarios`), so a
graph shape that property tests exercise is a graph shape ``repro verify``
fuzzes, and a counterexample found by either is reproducible in the other
from its ``(family, seed, task_count)`` recipe.

Usage::

    from hypothesis import given
    import strategies as strat

    @given(strat.task_graphs(max_tasks=12))
    def test_something(graph):
        ...
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from hypothesis import strategies as st

from repro.arch import generic_system
from repro.arch.board import RtrSystem
from repro.taskgraph.graph import TaskGraph
from repro.verify.scenarios import (
    FAMILIES,
    Scenario,
    build_family_graph,
    generate_scenario,
)

#: Families whose graphs always have at least one edge (useful for tests
#: about boundaries and memory maps).
CONNECTED_FAMILIES: Tuple[str, ...] = ("layered", "fanout", "chain", "diamond")


def scenarios(
    families: Sequence[str] = FAMILIES,
    max_tasks: Optional[int] = None,
) -> st.SearchStrategy[Scenario]:
    """Full verification scenarios (graph recipe + target system budgets)."""

    def build(index: int, seed: int) -> Scenario:
        scenario = generate_scenario(index, base_seed=seed, families=tuple(families))
        if max_tasks is not None and scenario.task_count > max_tasks:
            scenario = scenario.with_task_count(max_tasks)
        return scenario

    return st.builds(
        build,
        index=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )


def task_graphs(
    families: Sequence[str] = CONNECTED_FAMILIES,
    min_tasks: int = 2,
    max_tasks: int = 18,
) -> st.SearchStrategy[TaskGraph]:
    """Task graphs drawn from the verification families, sized to taste.

    Every graph carries explicit synthesis costs (CLBs in [20, 300]), so it
    is directly partitionable without an estimation pass.
    """

    def build(family: str, seed: int, task_count: int) -> TaskGraph:
        return build_family_graph(family, seed, task_count)

    return st.builds(
        build,
        family=st.sampled_from(tuple(families)),
        seed=st.integers(min_value=0, max_value=10 ** 6),
        task_count=st.integers(min_value=min_tasks, max_value=max_tasks),
    )


def systems(
    min_clbs: int = 400,
    max_clbs: int = 1200,
    min_memory: int = 1024,
    max_memory: int = 16384,
) -> st.SearchStrategy[RtrSystem]:
    """Generic single-FPGA target systems with drawn budgets.

    The CLB floor defaults above the verification families' 300-CLB task
    ceiling, so any drawn (graph, system) pair admits at least the
    one-task-per-partition solution.
    """
    return st.builds(
        generic_system,
        clb_capacity=st.integers(min_value=min_clbs, max_value=max_clbs),
        memory_words=st.integers(min_value=min_memory, max_value=max_memory),
        reconfiguration_time=st.sampled_from((0.001, 0.005, 0.01, 0.05)),
    )
