"""Cross-checks between the ILP solver backends on randomly generated instances.

The built-in simplex and branch-and-bound exist so the library has no hard
dependency on an external optimiser; these tests keep them honest by comparing
their optima against scipy's HiGHS on families of random (but always feasible
and bounded) instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ilp import Model, SolveStatus, linear_sum, solve, solve_lp, solve_lp_relaxation


def random_bounded_lp(seed: int, variables: int, constraints: int) -> Model:
    """A random LP that is always feasible (x = 0) and bounded (box constraints)."""
    rng = np.random.default_rng(seed)
    model = Model(f"lp-{seed}")
    xs = [model.add_continuous(f"x{i}", 0.0, float(rng.uniform(1.0, 10.0))) for i in range(variables)]
    for row in range(constraints):
        coefficients = rng.uniform(0.0, 5.0, size=variables)
        bound = float(rng.uniform(1.0, 20.0))
        model.add_constraint(
            linear_sum(float(c) * x for c, x in zip(coefficients, xs)) <= bound,
            name=f"c{row}",
        )
    objective_coefficients = rng.uniform(-5.0, 5.0, size=variables)
    model.minimize(linear_sum(float(c) * x for c, x in zip(objective_coefficients, xs)))
    return model


def random_knapsack_milp(seed: int, items: int) -> Model:
    """A random 0-1 knapsack-style MILP (always feasible: take nothing)."""
    rng = np.random.default_rng(seed)
    model = Model(f"milp-{seed}")
    xs = [model.add_binary(f"x{i}") for i in range(items)]
    weights = rng.integers(1, 10, size=items)
    values = rng.integers(1, 12, size=items)
    capacity = int(max(1, weights.sum() // 2))
    model.add_constraint(
        linear_sum(int(w) * x for w, x in zip(weights, xs)) <= capacity
    )
    model.maximize(linear_sum(int(v) * x for v, x in zip(values, xs)))
    return model


class TestLpCrossCheck:
    @pytest.mark.parametrize("seed", range(8))
    def test_builtin_simplex_matches_scipy(self, seed):
        model = random_bounded_lp(seed, variables=6, constraints=4)
        builtin = solve_lp_relaxation(model, use_builtin=True)
        scipy_result = solve_lp_relaxation(model, use_builtin=False)
        assert builtin.status is SolveStatus.OPTIMAL
        assert scipy_result.status is SolveStatus.OPTIMAL
        assert builtin.objective == pytest.approx(scipy_result.objective, rel=1e-6, abs=1e-8)

    @pytest.mark.parametrize("seed", range(8))
    def test_simplex_solution_is_feasible(self, seed):
        model = random_bounded_lp(seed, variables=5, constraints=5)
        result = solve(model, backend="simplex")
        assert result.is_optimal
        assert model.is_feasible(result.values, tolerance=1e-6)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_simplex_never_beats_scipy_by_more_than_tolerance(self, seed):
        """Both solvers claim optimality, so neither may be meaningfully better."""
        model = random_bounded_lp(seed, variables=4, constraints=3)
        builtin = solve_lp_relaxation(model, use_builtin=True)
        scipy_result = solve_lp_relaxation(model, use_builtin=False)
        assert abs(builtin.objective - scipy_result.objective) < 1e-6


class TestMilpCrossCheck:
    @pytest.mark.parametrize("seed", range(6))
    def test_branch_and_bound_matches_scipy_milp(self, seed):
        model = random_knapsack_milp(seed, items=10)
        bnb = solve(model, backend="branch-and-bound")
        scipy_result = solve(model, backend="scipy")
        assert bnb.is_optimal and scipy_result.is_optimal
        assert bnb.objective == pytest.approx(scipy_result.objective, abs=1e-6)
        assert model.is_feasible(bnb.values)

    @pytest.mark.parametrize("seed", range(4))
    def test_branch_and_bound_with_builtin_lp_matches(self, seed):
        model = random_knapsack_milp(seed, items=8)
        with_builtin = solve(model, backend="branch-and-bound", use_builtin_lp=True)
        reference = solve(model, backend="scipy")
        assert with_builtin.objective == pytest.approx(reference.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_relaxation_bounds_the_milp(self, seed):
        model = random_knapsack_milp(seed, items=12)
        relaxed = solve_lp_relaxation(model)
        exact = solve(model)
        # Maximisation: the LP relaxation is an upper bound on the MILP optimum.
        assert relaxed.objective >= exact.objective - 1e-6

    def test_lp_matrix_solver_direct(self):
        """Drive solve_lp directly on a matrix form with equalities and bounds."""
        model = Model()
        x = model.add_continuous("x", 0, 8)
        y = model.add_continuous("y", 1, 5)
        model.add_constraint(x + y == 6)
        model.add_constraint(2 * x - y <= 4)
        model.minimize(x - 3 * y)
        result = solve_lp(model.to_matrix_form())
        assert result.status is SolveStatus.OPTIMAL
        values = {model.variable("x"): result.x[0], model.variable("y"): result.x[1]}
        assert model.is_feasible(values, tolerance=1e-6)
        assert result.objective == pytest.approx(1 - 3 * 5)
