"""Unit tests for repro.units (time/data conversions and integer helpers)."""

import pytest

from repro import units
from repro.errors import SpecificationError


class TestTimeConversions:
    def test_ns_to_seconds(self):
        assert units.ns(100) == pytest.approx(1e-7)

    def test_us_to_seconds(self):
        assert units.us(500) == pytest.approx(5e-4)

    def test_ms_to_seconds(self):
        assert units.ms(100) == pytest.approx(0.1)

    def test_seconds_identity(self):
        assert units.seconds(2.5) == 2.5

    def test_roundtrip_ns(self):
        assert units.to_ns(units.ns(123.0)) == pytest.approx(123.0)

    def test_roundtrip_us(self):
        assert units.to_us(units.us(7.5)) == pytest.approx(7.5)

    def test_roundtrip_ms(self):
        assert units.to_ms(units.ms(42.0)) == pytest.approx(42.0)

    def test_format_time_picks_ns(self):
        assert units.format_time(100e-9) == "100.0 ns"

    def test_format_time_picks_us(self):
        assert "us" in units.format_time(5e-6)

    def test_format_time_picks_ms(self):
        assert "ms" in units.format_time(0.25)

    def test_format_time_picks_seconds(self):
        assert units.format_time(2.0).endswith(" s")

    def test_format_time_zero(self):
        assert units.format_time(0) == "0 s"

    def test_format_time_negative(self):
        assert units.format_time(-0.25).startswith("-")


class TestFrequency:
    def test_mhz(self):
        assert units.mhz(33) == pytest.approx(33e6)

    def test_period_from_frequency(self):
        assert units.period_from_frequency(100e6) == pytest.approx(10e-9)

    def test_frequency_from_period(self):
        assert units.frequency_from_period(10e-9) == pytest.approx(100e6)

    def test_period_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            units.period_from_frequency(0)

    def test_frequency_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            units.frequency_from_period(-1)


class TestDataSizes:
    def test_kilowords(self):
        assert units.kilowords(64) == 65536

    def test_words_to_bytes_32bit(self):
        assert units.words_to_bytes(1024, 32) == 4096

    def test_bytes_to_words_rounds_up(self):
        assert units.bytes_to_words(5, 32) == 2

    def test_words_to_bytes_rejects_odd_width(self):
        with pytest.raises(SpecificationError):
            units.words_to_bytes(10, 12)

    def test_format_words_k_suffix(self):
        assert units.format_words(65536) == "64K words"

    def test_format_words_m_suffix(self):
        assert units.format_words(2 * 1024 * 1024) == "2M words"

    def test_format_words_plain(self):
        assert units.format_words(100) == "100 words"


class TestIntegerHelpers:
    @pytest.mark.parametrize(
        "value, expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (32, 32), (33, 64), (65535, 65536)],
    )
    def test_next_power_of_two(self, value, expected):
        assert units.next_power_of_two(value) == expected

    def test_next_power_of_two_rejects_negative(self):
        with pytest.raises(SpecificationError):
            units.next_power_of_two(-1)

    @pytest.mark.parametrize("value, expected", [(1, True), (2, True), (3, False), (0, False)])
    def test_is_power_of_two(self, value, expected):
        assert units.is_power_of_two(value) is expected

    def test_ceil_div_exact(self):
        assert units.ceil_div(245760, 2048) == 120

    def test_ceil_div_rounds_up(self):
        assert units.ceil_div(245761, 2048) == 121

    def test_ceil_div_zero_numerator(self):
        assert units.ceil_div(0, 5) == 0

    def test_ceil_div_rejects_zero_denominator(self):
        with pytest.raises(SpecificationError):
            units.ceil_div(10, 0)

    def test_ceil_div_rejects_negative(self):
        with pytest.raises(SpecificationError):
            units.ceil_div(-1, 5)
