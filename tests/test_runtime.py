"""Tests for the batched partitioning engine (repro.runtime)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.errors import PartitioningError
from repro.partition import IlpTemporalPartitioner, PartitionProblem
from repro.runtime import (
    DiskCache,
    EngineConfig,
    JobOutcome,
    JobStatus,
    LruCache,
    PartitionEngine,
    ResultSource,
    SolverSpec,
    configure_shared_engine,
    ct_sweep_jobs,
    problem_fingerprint,
    shared_engine,
)
from repro.runtime.jobs import PartitionJob
from repro.taskgraph import Task, TaskGraph, clb_cost, linear_pipeline
from repro.units import ms, ns

from partition_helpers import make_problem


def _pipeline_problem(ct=ms(1), stages=3, clbs_per_stage=300):
    graph = linear_pipeline(
        stage_clbs=[clbs_per_stage] * stages,
        stage_delays=[ns(100 * (i + 1)) for i in range(stages)],
        words_per_edge=8,
        env_input_words=8,
        env_output_words=8,
    )
    return make_problem(graph, clb_capacity=500, memory_words=256, ct=ct)


def _infeasible_problem():
    """Two tasks that cannot share a partition, joined by an edge too fat
    for the board memory — no feasible partitioning exists."""
    graph = TaskGraph("infeasible")
    graph.add_task(Task("a", cost=clb_cost(400, ns(100))), env_input_words=1)
    graph.add_task(Task("b", cost=clb_cost(400, ns(100))), env_output_words=1)
    graph.add_edge("a", "b", words=1000)
    return make_problem(graph, clb_capacity=500, memory_words=16, ct=ms(1))


# ---------------------------------------------------------------------------
# Canonicalisation and hashing
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_identical_problems_hash_identically(self):
        assert problem_fingerprint(_pipeline_problem()) == problem_fingerprint(
            _pipeline_problem()
        )

    def test_insertion_order_does_not_matter(self):
        def build(order):
            graph = TaskGraph("order")
            tasks = {
                "a": Task("a", cost=clb_cost(100, ns(100))),
                "b": Task("b", cost=clb_cost(200, ns(200))),
            }
            for name in order:
                graph.add_task(tasks[name])
            graph.add_edge("a", "b", words=4)
            return make_problem(graph)

        assert problem_fingerprint(build("ab")) == problem_fingerprint(build("ba"))

    def test_parameters_change_the_hash(self):
        base = _pipeline_problem(ct=ms(1))
        assert problem_fingerprint(base) != problem_fingerprint(
            _pipeline_problem(ct=ms(2))
        )

    def test_solver_spec_changes_the_hash(self):
        problem = _pipeline_problem()
        ilp = PartitionJob(problem, SolverSpec(partitioner="ilp"))
        lst = PartitionJob(problem, SolverSpec(partitioner="list"))
        assert ilp.fingerprint() != lst.fingerprint()

    def test_time_limit_does_not_change_the_hash(self):
        problem = _pipeline_problem()
        assert (
            PartitionJob(problem, SolverSpec(time_limit=None)).fingerprint()
            == PartitionJob(problem, SolverSpec(time_limit=30.0)).fingerprint()
        )

    def test_hash_stable_across_process_boundaries(self):
        """The fingerprint must not depend on PYTHONHASHSEED or process state."""
        script = textwrap.dedent(
            """
            from repro.runtime import problem_fingerprint
            from repro.taskgraph import linear_pipeline
            from repro.arch import clbs
            from repro.partition import PartitionProblem
            from repro.units import ms, ns

            graph = linear_pipeline(
                stage_clbs=[300, 300, 300],
                stage_delays=[ns(100), ns(200), ns(300)],
                words_per_edge=8,
                env_input_words=8,
                env_output_words=8,
            )
            problem = PartitionProblem(
                graph=graph,
                resource_capacity=clbs(500),
                memory_words=256,
                reconfiguration_time=ms(1),
            )
            print(problem_fingerprint(problem))
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p] or [""]
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert child.stdout.strip() == problem_fingerprint(_pipeline_problem())


# ---------------------------------------------------------------------------
# Cache layers
# ---------------------------------------------------------------------------

def _outcome(fingerprint="f" * 64):
    return JobOutcome(
        fingerprint=fingerprint,
        status=JobStatus.SOLVED,
        assignment={"a": 1},
        partition_count=1,
        total_latency=1.0,
        computation_latency=0.5,
        method="ilp",
        backend="scipy",
    )


class TestCaches:
    def test_lru_evicts_least_recently_used(self):
        cache = LruCache(capacity=2)
        cache.put("a", _outcome("a"))
        cache.put("b", _outcome("b"))
        cache.get("a")  # refresh a; b is now the eviction candidate
        cache.put("c", _outcome("c"))
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_disk_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k" * 64, _outcome("k" * 64))
        loaded = cache.get("k" * 64)
        assert loaded is not None
        assert loaded.assignment == {"a": 1}
        assert loaded.status is JobStatus.SOLVED

    def test_disk_corrupt_file_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / ("c" * 64 + ".json")).write_text("not json", encoding="utf-8")
        assert cache.get("c" * 64) is None
        assert not (tmp_path / ("c" * 64 + ".json")).exists()

    def test_disk_truncated_entry_is_a_logged_miss(self, tmp_path, caplog):
        """A half-written JSON file (killed mid-write) is a miss, not a crash."""
        cache = DiskCache(tmp_path)
        fingerprint = "t" * 64
        cache.put(fingerprint, _outcome(fingerprint))
        path = tmp_path / f"{fingerprint}.json"
        path.write_text(path.read_text(encoding="utf-8")[:20], encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            assert cache.get(fingerprint) is None
        assert any("corrupt cache entry" in record.message for record in caplog.records)
        assert not path.exists()

    def test_disk_schema_mismatch_is_a_miss(self, tmp_path):
        """Valid JSON with the wrong shape must also be treated as a miss."""
        cache = DiskCache(tmp_path)
        fingerprint = "s" * 64
        path = tmp_path / f"{fingerprint}.json"
        path.write_text('{"status": "solved", "unexpected": 1}', encoding="utf-8")
        assert cache.get(fingerprint) is None
        assert not path.exists()

    def test_engine_overwrites_corrupt_disk_entry(self, tmp_path):
        """A corrupt entry is re-solved and overwritten by the next batch."""
        engine = PartitionEngine(EngineConfig(cache_dir=tmp_path))
        problem = _pipeline_problem()
        first = engine.solve_batch([problem])
        assert first.ok
        fingerprint = engine.make_job(problem).fingerprint()
        path = tmp_path / f"{fingerprint}.json"
        path.write_text("{truncated", encoding="utf-8")

        fresh = PartitionEngine(EngineConfig(cache_dir=tmp_path))
        second = fresh.solve_batch([problem])
        assert second.ok
        assert second[0].source is ResultSource.SOLVE
        assert fresh.stats.cache.misses == 1
        # The overwritten entry round-trips again.
        assert DiskCache(tmp_path).get(fingerprint) is not None

    def test_disk_cache_bounded_prunes_oldest(self, tmp_path):
        """max_entries prunes oldest-mtime entries and counts the prunes."""
        cache = DiskCache(tmp_path, max_entries=2)
        fingerprints = [letter * 64 for letter in "abcd"]
        for index, fingerprint in enumerate(fingerprints):
            cache.put(fingerprint, _outcome(fingerprint))
            # Distinct mtimes even on coarse-grained filesystems.
            os.utime(tmp_path / f"{fingerprint}.json", (index, index))
        assert len(cache) == 2
        assert cache.pruned == 2
        assert cache.get(fingerprints[0]) is None
        assert cache.get(fingerprints[1]) is None
        assert cache.get(fingerprints[3]) is not None

    def test_disk_cache_prune_never_evicts_the_fresh_entry(self, tmp_path):
        """With identical mtimes (coarse-grained filesystems) the name
        tie-break must not evict the entry whose put triggered the prune."""
        cache = DiskCache(tmp_path, max_entries=2)
        for letter in "yz":
            cache.put(letter * 64, _outcome(letter * 64))
        for path in tmp_path.glob("*.json"):
            os.utime(path, (1000, 1000))
        # "a" sorts before "y"/"z"; force the same mtime race by pruning
        # again with every mtime equal.
        cache.put("a" * 64, _outcome("a" * 64))
        os.utime(tmp_path / ("a" * 64 + ".json"), (1000, 1000))
        cache._prune(keep="a" * 64)
        assert cache.get("a" * 64) is not None
        assert len(cache) == 2

    def test_disk_cache_unbounded_never_prunes(self, tmp_path):
        cache = DiskCache(tmp_path)
        for letter in "abcd":
            cache.put(letter * 64, _outcome(letter * 64))
        assert len(cache) == 4
        assert cache.pruned == 0

    def test_disk_cache_bad_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_entries=0)

    def test_engine_bounded_disk_cache_stat(self, tmp_path):
        """The engine surfaces disk prunes in its stats snapshot."""
        engine = PartitionEngine(
            EngineConfig(cache_dir=tmp_path, max_disk_entries=1)
        )
        problems = [
            _pipeline_problem(stages=stages) for stages in (3, 4, 5)
        ]
        batch = engine.solve_batch(problems)
        assert batch.ok
        assert engine.stats.snapshot()["cache_disk_pruned"] == 2
        assert len(engine.cache.disk) == 1

    def test_outcome_json_roundtrip(self):
        outcome = _outcome()
        again = JobOutcome.from_json_dict(
            json.loads(json.dumps(outcome.to_json_dict()))
        )
        assert again == outcome


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------

class TestEngine:
    def test_cache_hit_miss_accounting(self, tmp_path):
        engine = PartitionEngine(EngineConfig(cache_dir=tmp_path))
        problem = _pipeline_problem()

        first = engine.solve_batch([problem])
        assert first[0].source is ResultSource.SOLVE
        assert engine.stats.cache.misses == 1
        assert engine.stats.cache.stores == 1

        second = engine.solve_batch([problem])
        assert second[0].source is ResultSource.MEMORY_CACHE
        assert engine.stats.cache.memory_hits == 1

        # A brand new engine sees the on-disk result.
        fresh = PartitionEngine(EngineConfig(cache_dir=tmp_path))
        third = fresh.solve_batch([fresh.make_job(problem)])
        assert third[0].source is ResultSource.DISK_CACHE
        assert fresh.stats.cache.disk_hits == 1
        assert fresh.stats.solved == 1

    def test_batch_dedup_solves_once(self):
        engine = PartitionEngine(EngineConfig())
        problem = _pipeline_problem()
        batch = engine.solve_batch([problem, problem, problem])
        sources = [report.source for report in batch]
        assert sources[0] is ResultSource.SOLVE
        assert sources[1:] == [ResultSource.BATCH_DEDUP, ResultSource.BATCH_DEDUP]
        assert engine.stats.deduped == 2
        assert engine.stats.cache.misses == 1

    def test_failures_are_not_cached(self):
        engine = PartitionEngine(EngineConfig())
        problem = _infeasible_problem()
        engine.solve_batch([problem])
        engine.solve_batch([problem])
        # Both attempts ran the solver: no hit was served for a failure.
        assert engine.stats.cache.misses == 2
        assert engine.stats.cache.hits == 0

    def test_batch_matches_serial_partitioner(self, dct_graph, paper_system):
        ct_values = [ms(1), ms(5), ms(20)]
        engine = PartitionEngine(EngineConfig(workers=2))
        batch = engine.solve_batch(
            ct_sweep_jobs(engine, dct_graph, paper_system, ct_values)
        )
        assert batch.ok
        partitioner = IlpTemporalPartitioner()
        for ct, report in zip(ct_values, batch):
            problem = PartitionProblem.from_system(
                dct_graph, paper_system.with_reconfiguration_time(ct)
            )
            expected = partitioner.partition(problem)
            assert report.outcome.partition_count == expected.partition_count
            assert report.outcome.total_latency == pytest.approx(
                expected.total_latency, abs=1e-15
            )
            rehydrated = report.partitioning()
            assert rehydrated.assignment == expected.assignment
            assert rehydrated.total_latency == pytest.approx(
                expected.total_latency, abs=1e-15
            )

    def test_infeasible_problem_yields_structured_failure(self):
        engine = PartitionEngine(EngineConfig())
        report = engine.solve_batch([_infeasible_problem()])[0]
        assert report.outcome.status is JobStatus.FAILED
        assert report.outcome.error_kind == "PartitioningError"
        assert "no feasible" in report.outcome.error
        with pytest.raises(PartitioningError):
            report.partitioning()

    def test_solve_raises_on_failure(self):
        engine = PartitionEngine(EngineConfig())
        with pytest.raises(PartitioningError, match="failed"):
            engine.solve(_infeasible_problem())

    def test_job_timeout_surfaces_structured_error(self, dct_graph, paper_system):
        engine = PartitionEngine(EngineConfig(workers=2, job_timeout=0.01))
        problem = PartitionProblem.from_system(dct_graph, paper_system)
        report = engine.solve_batch([engine.make_job(problem)])[0]
        assert report.outcome.status is JobStatus.TIMEOUT
        assert "wall-clock" in report.outcome.error
        assert engine.stats.timeouts == 1

    def test_unpicklable_job_surfaces_structured_crash(self):
        engine = PartitionEngine(EngineConfig(workers=2))
        problem = _pipeline_problem()
        problem.graph.poison = lambda: None  # lambdas cannot be pickled
        report = engine.solve_batch([engine.make_job(problem)])[0]
        assert report.outcome.status is JobStatus.CRASHED
        assert report.outcome.error
        assert engine.stats.crashes == 1

    @pytest.mark.skipif(
        sys.platform != "linux", reason="relies on fork-based worker start"
    )
    def test_dead_worker_surfaces_structured_crash(self, monkeypatch):
        import repro.runtime.engine as engine_module

        monkeypatch.setattr(engine_module, "execute_job", _kill_worker)
        engine = PartitionEngine(EngineConfig(workers=2))
        batch = engine.solve_batch([_pipeline_problem(), _pipeline_problem(ct=ms(2))])
        for report in batch:
            assert report.outcome.status is JobStatus.CRASHED
            assert "died" in report.outcome.error or report.outcome.error
        assert engine.stats.crashes == 2

    def test_mixed_batch_keeps_order_and_isolation(self):
        """A failing job must not disturb its neighbours' results."""
        engine = PartitionEngine(EngineConfig())
        good = _pipeline_problem()
        batch = engine.solve_batch([good, _infeasible_problem(), good])
        assert batch[0].ok and batch[2].ok
        assert not batch[1].ok
        assert batch[2].source is ResultSource.BATCH_DEDUP

    def test_job_timeout_requires_pool_workers(self):
        with pytest.raises(PartitioningError, match="workers >= 2"):
            EngineConfig(workers=0, job_timeout=1.0)
        with pytest.raises(PartitioningError, match="workers >= 2"):
            EngineConfig(workers=1, job_timeout=1.0)

    def test_disk_write_failure_does_not_lose_the_batch(self, tmp_path, monkeypatch):
        engine = PartitionEngine(EngineConfig(cache_dir=tmp_path))

        def broken_put(fingerprint, outcome):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(engine.cache.disk, "put", broken_put)
        batch = engine.solve_batch([_pipeline_problem()])
        assert batch.ok
        assert engine.stats.cache.disk_write_errors == 1

    def test_cached_rows_report_zero_wall_time(self):
        engine = PartitionEngine(EngineConfig())
        problem = _pipeline_problem()
        engine.solve_batch([problem])
        warm = engine.solve_batch([problem])[0]
        assert warm.source is ResultSource.MEMORY_CACHE
        assert warm.wall_time == 0.0
        assert warm.outcome.solve_time > 0.0  # original cost stays visible

    def test_rejects_bad_submission_type(self):
        engine = PartitionEngine(EngineConfig())
        with pytest.raises(PartitioningError, match="expected"):
            engine.solve_batch(["not a problem"])

    def test_list_and_level_partitioners_dispatch(self):
        engine = PartitionEngine(EngineConfig())
        problem = _pipeline_problem()
        for partitioner in ("list", "level"):
            report = engine.solve_batch(
                [engine.make_job(problem, partitioner=partitioner)]
            )[0]
            assert report.ok
            assert report.outcome.method == partitioner or report.outcome.method


def _kill_worker(job):
    os._exit(13)


# ---------------------------------------------------------------------------
# Shared engine / experiments wiring
# ---------------------------------------------------------------------------

class TestSharedEngine:
    def test_case_study_reuses_cached_solve(self):
        from repro.experiments import build_case_study

        engine = PartitionEngine(EngineConfig())
        first = build_case_study(use_ilp=True, engine=engine)
        second = build_case_study(use_ilp=True, engine=engine)
        assert engine.stats.solved == 2  # two jobs accounted...
        assert engine.stats.cache.misses == 1  # ...but only one actual solve
        assert engine.stats.cache.memory_hits == 1
        assert first.partitioning.assignment == second.partitioning.assignment

    def test_shared_engine_is_a_singleton(self):
        original = shared_engine()
        try:
            assert shared_engine() is original
            replaced = configure_shared_engine(EngineConfig(lru_capacity=8))
            assert shared_engine() is replaced
            assert shared_engine() is not original
        finally:
            # Restore so other tests keep their warm cache.
            import repro.runtime.engine as engine_module

            engine_module._shared_engine = original
