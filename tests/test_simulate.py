"""Tests for the execution simulator (repro.simulate)."""

import pytest

from repro.errors import SimulationError
from repro.fission import (
    SequencingStrategy,
    fdh_execution_time,
    idh_execution_time,
    static_execution_time,
)
from repro.simulate import (
    EventKind,
    RtrExecutionSimulator,
    SimulationEngine,
    StaticExecutionSimulator,
    breakdown_table,
    configuration_sequence,
    format_events,
    per_partition_execution_time,
)
from repro.units import ms, ns


class TestEngine:
    def test_advance_accumulates_time(self):
        engine = SimulationEngine()
        engine.advance(EventKind.CONFIGURE, ms(100))
        engine.advance(EventKind.EXECUTE, ms(50))
        assert engine.current_time == pytest.approx(ms(150))
        assert engine.time_spent_on(EventKind.CONFIGURE) == pytest.approx(ms(100))
        assert engine.event_count() == 2
        assert engine.event_count(EventKind.EXECUTE) == 1

    def test_events_are_contiguous(self):
        engine = SimulationEngine()
        for duration in (1e-3, 2e-3, 3e-3):
            engine.advance(EventKind.EXECUTE, duration)
        for earlier, later in zip(engine.events, engine.events[1:]):
            assert later.start_time == pytest.approx(earlier.end_time)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().advance(EventKind.EXECUTE, -1.0)

    def test_memory_tracking(self):
        engine = SimulationEngine(memory_capacity_words=100)
        engine.allocate_memory(60)
        engine.allocate_memory(40)
        assert engine.peak_memory_words == 100
        engine.release_memory(50)
        assert engine.memory_in_use_words == 50

    def test_memory_overflow_detected(self):
        engine = SimulationEngine(memory_capacity_words=100)
        engine.allocate_memory(90)
        with pytest.raises(SimulationError):
            engine.allocate_memory(11)

    def test_over_release_detected(self):
        engine = SimulationEngine()
        engine.allocate_memory(10)
        with pytest.raises(SimulationError):
            engine.release_memory(11)

    def test_breakdown_sums_to_total(self):
        engine = SimulationEngine()
        engine.advance(EventKind.CONFIGURE, 0.1)
        engine.advance(EventKind.TRANSFER_IN, 0.2)
        engine.advance(EventKind.EXECUTE, 0.3)
        breakdown = engine.breakdown()
        components = sum(value for key, value in breakdown.items() if key != "total")
        assert components == pytest.approx(breakdown["total"])


class TestRtrSimulator:
    @pytest.mark.parametrize("strategy", [SequencingStrategy.FDH, SequencingStrategy.IDH])
    @pytest.mark.parametrize("blocks", [1, 2048, 10000, 245760])
    def test_matches_analytic_model(self, case_study_ilp, strategy, blocks):
        """The event simulator and the closed-form model are independent
        implementations of the same semantics and must agree."""
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        simulated = simulator.simulate(case_study_ilp.rtr_spec, strategy, blocks)
        if strategy is SequencingStrategy.FDH:
            analytic = fdh_execution_time(case_study_ilp.rtr_spec, blocks, case_study_ilp.system)
        else:
            analytic = idh_execution_time(case_study_ilp.rtr_spec, blocks, case_study_ilp.system)
        assert simulated.total_time == pytest.approx(analytic.total, rel=1e-9)
        assert simulated.reconfiguration_time == pytest.approx(analytic.reconfiguration, rel=1e-9)
        assert simulated.computation_time == pytest.approx(analytic.computation, rel=1e-9)
        assert simulated.transfer_time == pytest.approx(analytic.data_transfer, rel=1e-9)

    def test_configuration_load_counts(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        fdh = simulator.simulate(case_study_ilp.rtr_spec, SequencingStrategy.FDH, 245760)
        idh = simulator.simulate(case_study_ilp.rtr_spec, SequencingStrategy.IDH, 245760)
        assert fdh.configuration_loads == 360
        assert idh.configuration_loads == 3

    def test_memory_never_exceeds_board_capacity(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system, check_memory=True)
        result = simulator.simulate(case_study_ilp.rtr_spec, SequencingStrategy.FDH, 4096)
        assert result.peak_memory_words <= case_study_ilp.system.memory_capacity_words

    def test_fdh_skip_edge_data_stays_resident(self):
        """Cross data spanning several boundaries (P1 -> P3) must stay in
        board memory until its consumer finishes, not be freed when the
        intermediate partition completes."""
        from repro.arch import generic_system
        from repro.fission.strategies import RtrTimingSpec

        spec = RtrTimingSpec(
            partition_delays=[ns(100), ns(100), ns(100)],
            partition_env_input_words=[2, 0, 0],
            partition_env_output_words=[0, 0, 2],
            partition_cross_input_words=[0, 0, 4],
            partition_cross_output_words=[4, 0, 0],
            computations_per_run=1,
        )
        system = generic_system(memory_words=6, reconfiguration_time=ms(1))
        simulator = RtrExecutionSimulator(system, check_memory=True)
        result = simulator.simulate(spec, SequencingStrategy.FDH, 1)
        # 2 env-input words + the 4 skip-edge words held through P2 and P3.
        assert result.peak_memory_words == 6

        tight = RtrExecutionSimulator(
            generic_system(memory_words=5, reconfiguration_time=ms(1)),
            check_memory=True,
        )
        with pytest.raises(SimulationError, match="overflow"):
            tight.simulate(spec, SequencingStrategy.FDH, 1)

    def test_fdh_tolerates_inconsistent_cross_volumes(self):
        """Hand-written specs whose cross-input volumes exceed what upstream
        produced must simulate without the occupancy going negative
        (regression for a hypothesis-found crash)."""
        from repro.arch import generic_system
        from repro.fission.strategies import RtrTimingSpec

        spec = RtrTimingSpec(
            partition_delays=[ns(100), ns(100)],
            partition_env_input_words=[6, 4],
            partition_env_output_words=[3, 1],
            partition_cross_input_words=[0, 6],
            partition_cross_output_words=[1, 0],
            computations_per_run=1,
        )
        system = generic_system(memory_words=10**6, reconfiguration_time=ms(1))
        simulator = RtrExecutionSimulator(system, check_memory=False)
        result = simulator.simulate(spec, SequencingStrategy.FDH, 1)
        assert result.total_time > 0

    def test_configuration_sequence_patterns(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        fdh = simulator.simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.FDH, 4096, keep_events=True
        )
        idh = simulator.simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.IDH, 4096, keep_events=True
        )
        assert configuration_sequence(fdh.events) == [1, 2, 3, 1, 2, 3]
        assert configuration_sequence(idh.events) == [1, 2, 3]

    def test_per_partition_execution_times(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        result = simulator.simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.IDH, 2048, keep_events=True
        )
        per_partition = per_partition_execution_time(result.events)
        assert per_partition[1] == pytest.approx(2048 * ns(3400))
        assert per_partition[2] == pytest.approx(2048 * ns(2520))

    def test_zero_workload(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        result = simulator.simulate(case_study_ilp.rtr_spec, SequencingStrategy.IDH, 0)
        assert result.total_time == 0 and result.runs == 0

    def test_negative_workload_rejected(self, case_study_ilp):
        with pytest.raises(SimulationError):
            RtrExecutionSimulator(case_study_ilp.system).simulate(
                case_study_ilp.rtr_spec, SequencingStrategy.IDH, -1
            )

    def test_inconsistent_design_overflows_memory(self, case_study_ilp):
        """A spec claiming a k larger than the memory allows must fail loudly."""
        from dataclasses import replace

        bad_spec = replace(case_study_ilp.rtr_spec, computations_per_run=4096)
        simulator = RtrExecutionSimulator(case_study_ilp.system, check_memory=True)
        with pytest.raises(SimulationError):
            simulator.simulate(bad_spec, SequencingStrategy.FDH, 8192)


class TestStaticSimulator:
    @pytest.mark.parametrize("blocks", [1, 100, 245760])
    def test_matches_analytic_model(self, case_study_ilp, blocks):
        simulator = StaticExecutionSimulator(case_study_ilp.system)
        simulated = simulator.simulate(case_study_ilp.static_spec, blocks)
        analytic = static_execution_time(case_study_ilp.static_spec, blocks, case_study_ilp.system)
        assert simulated.total_time == pytest.approx(analytic.total, rel=1e-9)
        assert simulated.computation_time == pytest.approx(analytic.computation, rel=1e-9)
        assert simulated.transfer_time == pytest.approx(analytic.data_transfer, rel=1e-9)

    def test_aggregation_keeps_totals_exact(self, case_study_ilp):
        detailed = StaticExecutionSimulator(case_study_ilp.system, detailed_invocation_limit=10**9)
        folded = StaticExecutionSimulator(case_study_ilp.system, detailed_invocation_limit=10)
        blocks = 5000
        assert folded.simulate(case_study_ilp.static_spec, blocks).total_time == pytest.approx(
            detailed.simulate(case_study_ilp.static_spec, blocks).total_time, rel=1e-9
        )

    def test_aggregation_reduces_event_count(self, case_study_ilp):
        folded = StaticExecutionSimulator(case_study_ilp.system, detailed_invocation_limit=10)
        result = folded.simulate(case_study_ilp.static_spec, 5000)
        assert result.event_count < 100

    def test_zero_workload(self, case_study_ilp):
        result = StaticExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.static_spec, 0
        )
        assert result.total_time == 0 and result.invocations == 0


class TestSimulatedHeadlines:
    def test_simulated_idh_improvement_matches_paper(self, case_study_ilp):
        """End-to-end: the simulators alone reproduce the ~42 % headline."""
        static = StaticExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.static_spec, 245760
        )
        rtr = RtrExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.IDH, 245760
        )
        improvement = (static.total_time - rtr.total_time) / static.total_time
        assert improvement == pytest.approx(0.42, abs=0.06)

    def test_simulated_fdh_is_worse_than_static(self, case_study_ilp):
        static = StaticExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.static_spec, 245760
        )
        rtr = RtrExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.FDH, 245760
        )
        assert rtr.total_time > static.total_time


class TestTraceHelpers:
    def test_format_events_limit(self, case_study_ilp):
        simulator = RtrExecutionSimulator(case_study_ilp.system)
        result = simulator.simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.FDH, 8192, keep_events=True
        )
        text = format_events(result.events, limit=5)
        assert "more events shown" in text

    def test_breakdown_table_renders(self, case_study_ilp):
        static = StaticExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.static_spec, 1000
        )
        rtr = RtrExecutionSimulator(case_study_ilp.system).simulate(
            case_study_ilp.rtr_spec, SequencingStrategy.IDH, 1000
        )
        table = breakdown_table({"static": static.breakdown, "rtr-idh": rtr.breakdown})
        assert "static" in table and "rtr-idh" in table and "execute" in table
