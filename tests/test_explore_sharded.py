"""Tests for sharded distributed exploration (repro.explore.shard / merge).

The three contracts under test:

* the fingerprint-range partition is a disjoint cover of the key space for
  any shard count (every point belongs to exactly one shard, purely as a
  function of its fingerprint);
* the Pareto-merge fold obeys the union law (union-of-fronts equals
  front-of-union), is order-invariant and idempotent;
* an N-way sharded run is byte-deterministic: the merged frontier is
  identical to the unsharded frontier for the same seed + budget, resuming
  replays the shard stores with zero flow jobs, and a shard killed
  mid-append (torn trailing JSONL line) resumes losing nothing but the torn
  record.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExplorationError
from repro.explore import (
    DesignPoint,
    ExploreConfig,
    Explorer,
    ParetoFront,
    PointRecord,
    RunStore,
    SearchSpace,
    ShardSpec,
    merge_fronts,
    merge_records,
    merge_stores,
    read_store,
    resolve_objectives,
    run_sharded,
    shard_key,
    shard_of,
    shard_store_path,
    shard_store_paths,
    shardable_strategy_names,
)
from repro.explore.shard import SHARD_KEY_SPACE
from repro.units import ms

#: The cheap all-heuristic space the explorer tests use (no ILP solves).
CHEAP_SPACE = SearchSpace.for_workloads(
    ["matmul_pipeline"],
    ct_values=(ms(1), ms(5), ms(20)),
    partitioners=("list", "level"),
    sequencings=("fdh", "idh"),
)

TWO = ("latency", "throughput")


def cheap_config(**overrides) -> ExploreConfig:
    defaults = dict(
        strategy="grid", budget=CHEAP_SPACE.size, batch_size=4, objectives=TWO
    )
    defaults.update(overrides)
    return ExploreConfig(**defaults)


def front_bytes(front: ParetoFront) -> str:
    return json.dumps(front.to_json_dict(), sort_keys=True)


def _record(index: int, latency: float, throughput: float) -> PointRecord:
    point = DesignPoint.create("synthetic", params={"i": index})
    return PointRecord(
        fingerprint=point.fingerprint(),
        point=point,
        metrics={"latency": latency, "throughput": throughput},
    )


#: Hypothesis strategy for lists of synthetic evaluated records.  Indices
#: key the fingerprints, so equal indices model the same design point
#: re-appearing (deterministic evaluation: same metrics too).
metric = st.floats(min_value=0.125, max_value=1024.0, allow_nan=False)
record_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31), metric, metric),
    max_size=24,
).map(
    lambda triples: [
        _record(i, lat, thr)
        for i, (lat, thr) in {
            i: (lat, thr) for i, lat, thr in triples
        }.items()
    ]
)

hex_fingerprints = st.integers(
    min_value=0, max_value=(1 << 256) - 1
).map(lambda value: f"{value:064x}")


# ---------------------------------------------------------------------------
# The fingerprint-range partition
# ---------------------------------------------------------------------------

class TestShardPartition:
    @given(hex_fingerprints, st.integers(min_value=1, max_value=64))
    def test_every_fingerprint_lands_in_exactly_one_shard(self, fp, count):
        owners = [
            index for index in range(count) if ShardSpec(index, count).contains(fp)
        ]
        assert owners == [shard_of(fp, count)]
        assert 0 <= owners[0] < count

    @given(
        st.lists(hex_fingerprints, min_size=2, max_size=8),
        st.integers(min_value=1, max_value=16),
    )
    def test_ranges_are_monotone_in_the_key(self, fps, count):
        fps.sort(key=shard_key)
        shards = [shard_of(fp, count) for fp in fps]
        assert shards == sorted(shards)

    @given(st.integers(min_value=1, max_value=64))
    def test_key_ranges_are_a_disjoint_cover(self, count):
        edges = [ShardSpec(index, count).key_range() for index in range(count)]
        assert edges[0][0] == 0
        assert edges[-1][1] == SHARD_KEY_SPACE
        for (_, high), (low, _) in zip(edges, edges[1:]):
            assert high == low  # contiguous, no gap, no overlap

    def test_real_design_points_partition_disjointly(self):
        for count in (1, 2, 3, 5):
            owners = {}
            for point in CHEAP_SPACE.enumerate():
                fp = point.fingerprint()
                owners.setdefault(shard_of(fp, count), set()).add(fp)
            assert sum(len(fps) for fps in owners.values()) == CHEAP_SPACE.size
            assert set().union(*owners.values()) == {
                point.fingerprint() for point in CHEAP_SPACE.enumerate()
            }

    def test_shard_assignment_is_stable_across_processes(self):
        # Pure function of the hex digest: pin a couple of known values so
        # any change to the key derivation is loud.
        assert shard_key("0" * 64) == 0
        assert shard_key("f" * 64) == (1 << 64) - 1
        assert shard_of("0" * 64, 7) == 0
        assert shard_of("f" * 64, 7) == 6

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ExplorationError):
            ShardSpec(0, 0)
        with pytest.raises(ExplorationError):
            ShardSpec(2, 2)
        with pytest.raises(ExplorationError):
            ShardSpec(-1, 2)
        with pytest.raises(ExplorationError):
            shard_of("ab", 2)  # too short for a 64-bit key
        with pytest.raises(ExplorationError):
            shard_of("z" * 64, 2)  # not hexadecimal
        with pytest.raises(ExplorationError):
            shard_of("0" * 64, 0)

    def test_shard_store_naming(self, tmp_path):
        base = tmp_path / "run-abc.jsonl"
        assert shard_store_path(base, 0, 2).name == "run-abc.shard-0-of-2.jsonl"
        paths = shard_store_paths(base, 3)
        assert [path.name for path in paths] == [
            "run-abc.shard-0-of-3.jsonl",
            "run-abc.shard-1-of-3.jsonl",
            "run-abc.shard-2-of-3.jsonl",
        ]
        assert all(path.parent == tmp_path for path in paths)


# ---------------------------------------------------------------------------
# The Pareto-merge fold
# ---------------------------------------------------------------------------

class TestMergeFold:
    @given(record_lists, record_lists)
    @settings(max_examples=60)
    def test_union_of_fronts_is_front_of_union(self, a, b):
        # Deterministic evaluation: a fingerprint seen in both halves must
        # carry the same metrics, as it would in shard stores of one run.
        byfp = {record.fingerprint: record for record in a + b}
        a = [byfp[record.fingerprint] for record in a]
        b = [byfp[record.fingerprint] for record in b]
        whole = merge_records(a + b, TWO)
        folded = merge_fronts([merge_records(a, TWO), merge_records(b, TWO)])
        assert front_bytes(whole) == front_bytes(folded)

    @given(record_lists, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_fold_is_order_invariant(self, records, rng):
        shuffled = list(records)
        rng.shuffle(shuffled)
        assert front_bytes(merge_records(records, TWO)) == front_bytes(
            merge_records(shuffled, TWO)
        )

    @given(record_lists)
    @settings(max_examples=60)
    def test_fold_is_idempotent(self, records):
        once = merge_records(records, TWO)
        twice = merge_records(records, TWO, front=merge_records(records, TWO))
        assert front_bytes(once) == front_bytes(twice)

    def test_failed_records_are_skipped(self):
        failed = PointRecord(
            fingerprint="f" * 64,
            point=DesignPoint.create("w"),
            status="failed",
            error="boom",
        )
        front = merge_records([_record(1, 2.0, 3.0), failed], TWO)
        assert len(front) == 1

    def test_merge_fronts_rejects_mixed_objectives(self):
        a = ParetoFront(resolve_objectives(("latency",)))
        b = ParetoFront(resolve_objectives(("latency", "throughput")))
        with pytest.raises(ExplorationError):
            merge_fronts([a, b])
        with pytest.raises(ExplorationError):
            merge_fronts([])

    def test_merge_stores_rejects_mixed_contexts(self, tmp_path):
        a_path, b_path = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with RunStore(a_path, "fp", context={"eval_blocks": 16384}) as store:
            store.record(_record(1, 2.0, 3.0))
        with RunStore(b_path, "fp", context={"eval_blocks": 64}) as store:
            store.record(_record(2, 3.0, 2.0))
        with pytest.raises(ExplorationError, match="context"):
            merge_stores([a_path, b_path])
        with pytest.raises(ExplorationError):
            merge_stores([])
        with pytest.raises(ExplorationError):
            merge_stores([tmp_path / "missing.jsonl"])

    def test_merge_stores_counts_duplicates(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with RunStore(path, "fp") as store:
                store.record(_record(1, 2.0, 3.0))
        result = merge_stores(paths)
        assert result.duplicates == 1
        assert len(result.front) == 1
        assert result.sources == {str(path): 1 for path in paths}


# ---------------------------------------------------------------------------
# Read-only store reading (what merge uses on possibly-live shard stores)
# ---------------------------------------------------------------------------

class TestReadStore:
    def test_torn_trailing_line_is_dropped_without_writing(self, tmp_path):
        """A shard killed mid-append leaves a half line; a merge reading the
        store must drop it, log it, and leave the file bytes untouched."""
        path = tmp_path / "run.jsonl"
        with RunStore(path, "fp") as store:
            store.record(_record(1, 2.0, 3.0))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "torn-mid-app')  # killed mid-append
        before = path.read_bytes()
        meta, records = read_store(path)
        assert [record.fingerprint for record in records] == [
            _record(1, 2.0, 3.0).fingerprint
        ]
        assert meta.get("version") == 1
        assert path.read_bytes() == before  # strictly read-only

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunStore(path, "fp") as store:
            store.record(_record(1, 2.0, 3.0))
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{not json at all")
        lines.insert(2, '{"fingerprint": 42}')  # malformed record shape
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        _, records = read_store(path)
        assert len(records) == 1

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "meta", "version": 999}\n', encoding="utf-8")
        with pytest.raises(ExplorationError, match="schema version"):
            read_store(path)


# ---------------------------------------------------------------------------
# Shard-replaying explorers (in-process, memory stores: fast)
# ---------------------------------------------------------------------------

class TestShardedExplorer:
    def _solo_and_shards(self, config, count):
        solo = Explorer(CHEAP_SPACE, config=config).run()
        shard_results = [
            Explorer(
                CHEAP_SPACE, config=config, store=RunStore(),
                shard=ShardSpec(index, count),
            ).run()
            for index in range(count)
        ]
        return solo, shard_results

    @pytest.mark.parametrize("strategy", ["grid", "random"])
    @pytest.mark.parametrize("count", [2, 3])
    def test_merged_front_matches_unsharded(self, strategy, count):
        config = cheap_config(strategy=strategy, budget=8, seed=3)
        solo, shards = self._solo_and_shards(config, count)
        merged = merge_fronts([result.front for result in shards])
        assert front_bytes(merged) == front_bytes(solo.front)

    def test_shards_partition_the_trajectory_exactly(self):
        config = cheap_config()
        solo, shards = self._solo_and_shards(config, 3)
        solo_fps = {record.fingerprint for record in solo.records}
        evaluated = [
            {record.fingerprint for record in result.records if record.ok}
            for result in shards
        ]
        # Every shard replays the whole trajectory...
        assert all(result.visited == solo.visited for result in shards)
        # ...the evaluated sets are pairwise disjoint...
        for i in range(len(evaluated)):
            for j in range(i + 1, len(evaluated)):
                assert not (evaluated[i] & evaluated[j])
        # ...and their union is exactly the unsharded evaluation set.
        assert set().union(*evaluated) == solo_fps
        assert sum(result.off_shard for result in shards) == (
            solo.visited * (len(shards) - 1)
        )

    def test_off_shard_points_never_reach_the_store(self, tmp_path):
        config = cheap_config()
        shard = ShardSpec(0, 2)
        path = tmp_path / "run.shard-0-of-2.jsonl"
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            result = Explorer(
                CHEAP_SPACE, config=config, store=store, shard=shard
            ).run()
        _, records = read_store(path)
        assert len(records) == result.visited - result.off_shard
        assert all(shard.contains(record.fingerprint) for record in records)

    def test_skipped_rows_are_labelled(self):
        result = Explorer(
            CHEAP_SPACE, config=cheap_config(), store=RunStore(),
            shard=ShardSpec(0, 2),
        ).run()
        skipped = [row for row in result.rows() if row["status"] == "skipped"]
        assert len(skipped) == result.off_shard > 0
        assert all(row["source"] == "off-shard" for row in skipped)
        assert "off-shard skipped" in result.describe()

    def test_adaptive_strategies_are_refused(self):
        for strategy in ("greedy", "anneal"):
            with pytest.raises(ExplorationError, match="cannot be sharded"):
                Explorer(
                    CHEAP_SPACE,
                    config=cheap_config(strategy=strategy),
                    shard=ShardSpec(0, 2),
                )
        assert shardable_strategy_names() == ["grid", "random"]


# ---------------------------------------------------------------------------
# The parallel driver: determinism, resume, kill-and-resume fault tolerance
# ---------------------------------------------------------------------------

class TestRunSharded:
    def test_byte_deterministic_and_merge_order_invariant(self, tmp_path):
        config = cheap_config()
        solo = Explorer(CHEAP_SPACE, config=config).run()
        result = run_sharded(CHEAP_SPACE, config, 2, tmp_path / "run.jsonl")
        assert result.ok
        assert front_bytes(result.front) == front_bytes(solo.front)
        paths = shard_store_paths(tmp_path / "run.jsonl", 2)
        assert all(path.is_file() for path in paths)
        # Merge output is identical regardless of shard completion order.
        forward = merge_stores(paths, objectives=TWO)
        backward = merge_stores(list(reversed(paths)), objectives=TWO)
        assert front_bytes(forward.front) == front_bytes(backward.front)
        # Same seed + budget + shard count: identical store bytes per shard.
        rerun_dir = tmp_path / "rerun"
        rerun = run_sharded(CHEAP_SPACE, config, 2, rerun_dir / "run.jsonl")
        assert rerun.ok
        for first, second in zip(paths, shard_store_paths(rerun_dir / "run.jsonl", 2)):
            assert first.read_bytes() == second.read_bytes()

    def test_resume_evaluates_zero_flow_jobs(self, tmp_path):
        config = cheap_config()
        first = run_sharded(CHEAP_SPACE, config, 2, tmp_path / "run.jsonl")
        assert first.flow_evaluated == CHEAP_SPACE.size
        resumed = run_sharded(
            CHEAP_SPACE, config, 2, tmp_path / "run.jsonl", resume=True
        )
        assert resumed.flow_evaluated == 0
        assert all(shard.store_hits > 0 for shard in resumed.shards)
        assert front_bytes(resumed.front) == front_bytes(first.front)

    def test_killed_shard_resumes_losing_only_the_torn_record(self, tmp_path):
        """Fault tolerance: kill one shard mid-run (its store ends in a torn
        half-written line), resume the whole sharded run, and the merged
        frontier must come out byte-identical to the unsharded run's with
        only the lost records re-evaluated."""
        config = cheap_config()
        solo = Explorer(CHEAP_SPACE, config=config).run()
        base = tmp_path / "run.jsonl"
        first = run_sharded(CHEAP_SPACE, config, 2, base)
        victim = shard_store_path(base, 1, 2)
        survivor = shard_store_path(base, 0, 2)
        _, complete = read_store(victim)
        # Re-create the store a SIGKILLed worker leaves behind: the last
        # record only half-appended, the one before lost entirely.
        lines = victim.read_text(encoding="utf-8").splitlines()
        victim.write_text(
            "\n".join(lines[:-2]) + "\n" + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        survivor_before = survivor.read_bytes()
        resumed = run_sharded(CHEAP_SPACE, config, 2, base, resume=True)
        # Exactly the two damaged records were re-evaluated, nothing else.
        assert resumed.flow_evaluated == 2
        assert resumed.shards[0].flow_evaluated == 0
        assert resumed.shards[1].flow_evaluated == 2
        assert front_bytes(resumed.front) == front_bytes(solo.front)
        # The healed store holds every record again; the survivor untouched.
        _, healed = read_store(victim)
        assert {r.fingerprint for r in healed} == {r.fingerprint for r in complete}
        assert survivor.read_bytes() == survivor_before

    def test_single_shard_runs_in_process(self, tmp_path):
        config = cheap_config(budget=4)
        result = run_sharded(CHEAP_SPACE, config, 1, tmp_path / "run.jsonl")
        assert result.shard_count == 1
        assert result.shards[0].off_shard == 0
        assert result.shards[0].evaluated == 4

    def test_driver_validates_inputs(self, tmp_path):
        with pytest.raises(ExplorationError):
            run_sharded(CHEAP_SPACE, cheap_config(), 0, tmp_path / "run.jsonl")
        with pytest.raises(ExplorationError, match="cannot be sharded"):
            run_sharded(
                CHEAP_SPACE, cheap_config(strategy="anneal"), 2,
                tmp_path / "run.jsonl",
            )
        with pytest.raises(ExplorationError):
            run_sharded(CHEAP_SPACE, {"strategy": "grid"}, 2, tmp_path / "r.jsonl")
