"""Tests for the one-shot reproduction report (repro.experiments.summary)."""

import pytest

from repro.cli import main
from repro.experiments import (
    ClaimCheck,
    format_reproduction_report,
    reproduction_report,
)


@pytest.fixture(scope="module")
def report(case_study_reference):
    return reproduction_report(case_study_reference)


class TestReproductionReport:
    def test_every_claim_within_band(self, report):
        failed = report.failed()
        assert report.all_ok, f"claims outside expectation bands: {failed}"

    def test_covers_all_experiments(self, report):
        experiments = {check.experiment for check in report.checks}
        assert experiments >= {
            "E3", "E4", "E5", "E6", "E7", "Table 1", "Table 2",
            "Figure 4", "Figure 5", "Figure 8",
        }

    def test_has_at_least_a_dozen_checks(self, report):
        assert len(report.checks) >= 12

    def test_rows_are_renderable(self, report):
        text = format_reproduction_report(report)
        assert "Reproduction report" in text
        assert "All claims reproduced" in text
        assert "IDH improvement" in text

    def test_claim_check_row_shape(self):
        check = ClaimCheck("E0", "demo", 1, 2, False, note="why")
        row = check.as_row()
        assert row["ok"] == "NO" and row["note"] == "why"

    def test_failed_listing(self, report):
        assert report.failed() == []


class TestCliReportCommand:
    def test_report_command_exit_code_and_output(self, capsys):
        assert main(["report", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "All claims reproduced" in out
        assert "Figure 8" in out
