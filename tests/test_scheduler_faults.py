"""Fault injection for the work-stealing shard scheduler.

The scheduler's whole claim is that failure is boring: a shard range's
store bytes are a pure function of (space, config, range index, range
count), so killed workers, expired leases, steals, late completions and
torn writes can at worst cause *re-evaluation*, never wrong results.
This battery attacks that claim directly:

* SIGKILL a worker that holds a lease — the range must be re-issued and
  the final merged frontier must be byte-identical to the unsharded run;
* tear the trailing line of a shard store the way a killed writer does —
  ``read_store`` healing must recover the exact intact record set;
* slow one of four workers 10x (through the ``REPRO_SCHED_DELAY_S`` hook)
  — stealing must keep the makespan within 2x of the fair-share optimum
  and at least 2x ahead of static contiguous range assignment.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

from repro.explore import (
    ExplorationPlan,
    ExploreConfig,
    Explorer,
    ParetoFront,
    RunStore,
    SearchSpace,
    ShardSpec,
    merge_stores,
    read_store,
    run_scheduled_worker,
    shard_store_path,
)
from repro.explore.scheduler import DELAY_ENV
from repro.serve import FlowServer, ServeConfig, start_in_background
from repro.units import ms

CHEAP_SPACE = SearchSpace.for_workloads(
    ["matmul_pipeline"],
    ct_values=(ms(1), ms(5), ms(20)),
    partitioners=("list", "level"),
    sequencings=("fdh", "idh"),
)

TWO = ("latency", "throughput")


def cheap_config(**overrides) -> ExploreConfig:
    defaults = dict(
        strategy="grid", budget=CHEAP_SPACE.size, batch_size=4, objectives=TWO
    )
    defaults.update(overrides)
    return ExploreConfig(**defaults)


def front_bytes(front: ParetoFront) -> str:
    return json.dumps(front.to_json_dict(), sort_keys=True)


def _solo_front_bytes(cache_dir: str) -> str:
    """The unsharded reference frontier every faulted run must reproduce."""
    result = Explorer(
        CHEAP_SPACE, config=cheap_config(cache_dir=cache_dir)
    ).run()
    return front_bytes(result.front)


def _merged_front_bytes(plan: ExplorationPlan, scheduler) -> str:
    paths = [
        scheduler.store_paths()[index] for index in range(plan.range_count)
    ]
    merged = merge_stores(paths, objectives=TWO)
    return front_bytes(merged.front)


def _blocked_worker_main(url: str, work_dir: str) -> None:
    """Worker that leases a range, then hangs in the delay hook until shot."""
    os.environ[DELAY_ENV] = "60"  # exercises the env-var path of the hook
    run_scheduled_worker(
        url, worker_id="victim", work_dir=work_dir, timeout_s=120.0
    )


class TestWorkerDeath:
    def test_sigkill_mid_lease_reissues_and_merges_byte_identically(
        self, tmp_path
    ):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=6
        )
        cache_dir = str(tmp_path / "cache")
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "run.jsonl", lease_timeout=1.0)
        with start_in_background(server=server) as handle:
            scheduler = server.schedule.scheduler
            victim = multiprocessing.get_context("spawn").Process(
                target=_blocked_worker_main,
                args=(handle.url, str(tmp_path / "victim")),
            )
            victim.start()
            try:
                deadline = time.monotonic() + 60.0
                while not scheduler.live_leases():
                    assert time.monotonic() < deadline, "victim never leased"
                    time.sleep(0.02)
                [lease] = scheduler.live_leases()
                victim_range = lease.range_index
                assert lease.worker == "victim"
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=10.0)
                assert victim.exitcode == -signal.SIGKILL
            finally:
                if victim.is_alive():  # pragma: no cover - cleanup only
                    victim.kill()
                    victim.join()

            # A healthy worker drains the whole schedule, including the
            # dead worker's range once its 1 s lease expires.
            result = run_scheduled_worker(
                handle.url,
                worker_id="healthy",
                work_dir=str(tmp_path / "healthy"),
                cache_dir=cache_dir,
                range_delay_s=0.0,
            )
            assert result.ranges_completed == plan.range_count
            assert scheduler.done
            # The victim's range was granted twice: once to the victim,
            # once (after expiry or a steal) to the healthy worker.
            assert scheduler.grants_of(victim_range) == 2
            assert scheduler.reissued + scheduler.stolen >= 1
            merged = _merged_front_bytes(plan, scheduler)
        assert merged == _solo_front_bytes(cache_dir)


class TestTornStore:
    def test_torn_trailing_line_heals_to_exact_record_set(self, tmp_path):
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=2
        )
        config = plan.explore_config(cache_dir=str(tmp_path / "cache"))
        paths = []
        for index in range(plan.range_count):
            path = shard_store_path(
                tmp_path / "run.jsonl", index, plan.range_count
            )
            with RunStore(
                path,
                CHEAP_SPACE.fingerprint(),
                resume=False,
                context={"eval_blocks": config.eval_blocks},
            ) as store:
                Explorer(
                    CHEAP_SPACE,
                    config=config,
                    store=store,
                    shard=ShardSpec(index, plan.range_count),
                ).run()
            paths.append(path)
        intact = merge_stores(paths, objectives=TWO)
        _, before = read_store(paths[0])
        assert before, "shard 0 should hold some of the 12 points"

        # Tear the store the way a SIGKILLed writer does: a partial
        # record with no trailing newline.
        with paths[0].open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "dead-beef", "point": {"wor')

        _, after = read_store(paths[0])
        assert [record.to_json_dict() for record in after] == [
            record.to_json_dict() for record in before
        ]
        torn = merge_stores(paths, objectives=TWO)
        assert front_bytes(torn.front) == front_bytes(intact.front)

    def test_returned_store_torn_after_streaming_still_merges(self, tmp_path):
        """Tearing the *scheduler-side* copy after completion heals too."""
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=3
        )
        cache_dir = str(tmp_path / "cache")
        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "run.jsonl")
        with start_in_background(server=server) as handle:
            run_scheduled_worker(
                handle.url,
                worker_id="w0",
                work_dir=str(tmp_path / "w0"),
                cache_dir=cache_dir,
            )
            scheduler = server.schedule.scheduler
            assert scheduler.done
            reference = _merged_front_bytes(plan, scheduler)
            first = Path(scheduler.store_paths()[0])
            with first.open("a", encoding="utf-8") as handle_:
                handle_.write('{"kind": "torn mid-wri')
            assert _merged_front_bytes(plan, scheduler) == reference
        assert reference == _solo_front_bytes(cache_dir)


class TestStraggler:
    def test_stealing_beats_static_assignment_with_one_slow_worker(
        self, tmp_path
    ):
        ranges, fast_delay = 20, 0.15
        slow_delay = 10 * fast_delay
        plan = ExplorationPlan.from_config(
            CHEAP_SPACE, cheap_config(), range_count=ranges
        )
        cache_dir = str(tmp_path / "cache")
        # Warm the flow disk cache first so wall time is delay-dominated
        # and the timing assertions are robust.
        solo = _solo_front_bytes(cache_dir)

        server = FlowServer(ServeConfig(workers=0))
        server.attach_schedule(plan, tmp_path / "dyn.jsonl", lease_timeout=30.0)
        results = {}

        def pull(name: str, delay: float) -> None:
            results[name] = run_scheduled_worker(
                server_url,
                worker_id=name,
                work_dir=str(tmp_path / name),
                cache_dir=cache_dir,
                range_delay_s=delay,
            )

        with start_in_background(server=server) as handle:
            server_url = handle.url
            threads = [
                threading.Thread(target=pull, args=(f"fast{i}", fast_delay))
                for i in range(3)
            ]
            threads.append(
                threading.Thread(target=pull, args=("slow", slow_delay))
            )
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive()
            dynamic_wall = time.perf_counter() - start
            scheduler = server.schedule.scheduler
            assert scheduler.done
            merged = _merged_front_bytes(plan, scheduler)

        # Work was actually rebalanced off the straggler: at least one
        # steal happened and the slow worker finished well under its
        # static quarter of the ranges.
        assert scheduler.stolen >= 1
        slow_done = (
            results["slow"].ranges_completed
            - results["slow"].ranges_duplicate
        )
        assert slow_done < ranges // 4

        # The makespan is within 2x of the fair-share optimum, i.e. the
        # delay-weighted lower bound with perfect rebalancing.
        optimum = ranges / (3 / fast_delay + 1 / slow_delay)
        assert dynamic_wall <= 2.0 * optimum, (
            f"dynamic {dynamic_wall:.2f}s vs optimum {optimum:.2f}s"
        )

        # And at least 2x ahead of no-stealing static contiguous blocks,
        # whose makespan is pinned to the straggler's whole block.
        static_wall = self._static_baseline(
            plan, tmp_path / "static.jsonl", cache_dir,
            [fast_delay, fast_delay, fast_delay, slow_delay],
        )
        assert static_wall >= 2.0 * dynamic_wall, (
            f"static {static_wall:.2f}s vs dynamic {dynamic_wall:.2f}s"
        )

        # Correctness was never on the table: byte-identical frontier.
        assert merged == solo

    @staticmethod
    def _static_baseline(plan, store_base, cache_dir, delays) -> float:
        """No-stealing baseline: fixed contiguous range block per worker."""
        config = plan.explore_config(cache_dir=cache_dir)
        block = plan.range_count // len(delays)

        def run_block(worker: int, delay: float) -> None:
            for index in range(worker * block, (worker + 1) * block):
                time.sleep(delay)
                path = shard_store_path(store_base, index, plan.range_count)
                with RunStore(
                    path,
                    plan.space.fingerprint(),
                    resume=False,
                    context={"eval_blocks": config.eval_blocks},
                ) as store:
                    Explorer(
                        plan.space,
                        config=config,
                        store=store,
                        shard=ShardSpec(index, plan.range_count),
                    ).run()

        threads = [
            threading.Thread(target=run_block, args=(worker, delay))
            for worker, delay in enumerate(delays)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=240.0)
            assert not thread.is_alive()
        return time.perf_counter() - start
