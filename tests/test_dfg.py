"""Tests for operation-level data-flow graphs (repro.dfg)."""

import pytest

from repro.dfg import (
    DataFlowGraph,
    DfgBuilder,
    OpKind,
    Operation,
    asap_levels,
    butterfly_dfg,
    chain_dfg,
    expected_arity,
    fir_tap_dfg,
    io_words,
    make_operation,
    max_parallelism,
    profile,
    result_width,
    software_operation_count,
    sum_of_products_dfg,
    vector_product_dfg,
)
from repro.errors import CycleError, GraphError, SpecificationError, UnknownOperationError


class TestOperations:
    def test_from_string(self):
        assert OpKind.from_string("add") is OpKind.ADD

    def test_from_string_unknown(self):
        with pytest.raises(UnknownOperationError):
            OpKind.from_string("frobnicate")

    def test_zero_cost_kinds(self):
        assert Operation("x", OpKind.INPUT).is_zero_cost
        assert Operation("c", OpKind.CONST).is_zero_cost
        assert not Operation("m", OpKind.MUL).is_zero_cost

    def test_memory_kinds(self):
        assert Operation("r", OpKind.MEMORY_READ).is_memory_access
        assert not Operation("a", OpKind.ADD).is_memory_access

    def test_arity(self):
        assert expected_arity(OpKind.ADD) == 2
        assert expected_arity(OpKind.MUX) == 3
        assert Operation("a", OpKind.ADD).arity == 2

    def test_rejects_empty_name(self):
        with pytest.raises(SpecificationError):
            Operation("", OpKind.ADD)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(SpecificationError):
            Operation("a", OpKind.ADD, width=0)

    def test_make_operation(self):
        op = make_operation("m1", "mul", width=9)
        assert op.kind is OpKind.MUL and op.width == 9

    def test_result_width_add_grows_one_bit(self):
        assert result_width(OpKind.ADD, (8, 8)) == 9

    def test_result_width_mul_sums(self):
        assert result_width(OpKind.MUL, (8, 9)) == 17

    def test_result_width_compare_is_one(self):
        assert result_width(OpKind.COMPARE, (16, 16)) == 1

    def test_describe(self):
        assert "mul" in Operation("m", OpKind.MUL, width=9).describe()


class TestDataFlowGraph:
    def test_add_and_lookup(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("a", OpKind.INPUT))
        assert "a" in dfg and dfg.operation("a").kind is OpKind.INPUT

    def test_duplicate_name_rejected(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("a", OpKind.INPUT))
        with pytest.raises(GraphError):
            dfg.add_operation(Operation("a", OpKind.ADD))

    def test_unknown_operation_lookup(self):
        with pytest.raises(GraphError):
            DataFlowGraph("g").operation("missing")

    def test_dependency_edges(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("a", OpKind.INPUT))
        dfg.add_operation(Operation("b", OpKind.REGISTER))
        dfg.add_dependency("a", "b")
        assert dfg.successors("a") == ["b"]
        assert dfg.predecessors("b") == ["a"]

    def test_self_dependency_rejected(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("a", OpKind.ADD))
        with pytest.raises(GraphError):
            dfg.add_dependency("a", "a")

    def test_cycle_rejected(self):
        dfg = DataFlowGraph("g")
        for name in ("a", "b"):
            dfg.add_operation(Operation(name, OpKind.ADD))
        dfg.add_dependency("a", "b")
        with pytest.raises(CycleError):
            dfg.add_dependency("b", "a")

    def test_topological_order_respects_edges(self):
        dfg = vector_product_dfg(4)
        order = dfg.topological_order()
        positions = {name: index for index, name in enumerate(order)}
        for producer, consumer in dfg.edges():
            assert positions[producer] < positions[consumer]

    def test_validate_output_with_successor_rejected(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("i", OpKind.INPUT))
        dfg.add_operation(Operation("o", OpKind.OUTPUT))
        dfg.add_operation(Operation("r", OpKind.REGISTER))
        dfg.add_dependency("i", "o")
        dfg.add_dependency("o", "r")
        with pytest.raises(GraphError):
            dfg.validate()

    def test_validate_dangling_compute_rejected(self):
        dfg = DataFlowGraph("g")
        dfg.add_operation(Operation("a", OpKind.ADD))
        with pytest.raises(GraphError):
            dfg.validate()

    def test_subgraph_copy(self):
        dfg = vector_product_dfg(4)
        names = dfg.operation_names()[:4]
        sub = dfg.subgraph_copy(names)
        assert set(sub.operation_names()) == set(names)

    def test_copy_preserves_counts(self):
        dfg = vector_product_dfg(4)
        assert len(dfg.copy()) == len(dfg)

    def test_longest_path_counts_compute_only(self):
        assert chain_dfg(5).longest_path_length() == 5


class TestBuilders:
    def test_vector_product_structure(self):
        dfg = vector_product_dfg(4, input_width=8, coefficient_width=9)
        prof = profile(dfg)
        assert prof.input_count == 4
        assert prof.constant_count == 4
        assert prof.output_count == 1
        assert prof.kind_histogram["mul"] == 4
        assert prof.kind_histogram["add"] == 3

    def test_vector_product_length_one(self):
        dfg = vector_product_dfg(1)
        assert profile(dfg).kind_histogram.get("add", 0) == 0

    def test_vector_product_rejects_zero_length(self):
        with pytest.raises(SpecificationError):
            vector_product_dfg(0)

    def test_fir_has_sequential_accumulation(self):
        dfg = fir_tap_dfg(4)
        # Transposed-form chain: critical path ~ taps (mults plus adds).
        assert dfg.longest_path_length() >= 4

    def test_butterfly_outputs(self):
        assert len(butterfly_dfg().outputs()) == 2

    def test_sum_of_products_inputs(self):
        assert len(sum_of_products_dfg(3).inputs()) == 6

    def test_chain_validates(self):
        chain_dfg(3).validate()

    def test_builder_width_propagation(self):
        builder = DfgBuilder("w")
        a = builder.input("a", width=8)
        c = builder.const(1.0, "c", width=9)
        product = builder.mul(a, c)
        assert builder.dfg.operation(product).width == 17

    def test_all_builders_validate(self):
        for dfg in (vector_product_dfg(4), fir_tap_dfg(3), butterfly_dfg(), sum_of_products_dfg(2), chain_dfg(2)):
            dfg.validate()


class TestAnalysis:
    def test_asap_levels_start_at_zero_for_sources(self):
        dfg = vector_product_dfg(4)
        levels = asap_levels(dfg)
        for op in dfg.inputs():
            assert levels[op.name] == 0

    def test_max_parallelism_vector_product(self):
        assert max_parallelism(vector_product_dfg(4)) == 4

    def test_max_parallelism_chain_is_one(self):
        assert max_parallelism(chain_dfg(5)) == 1

    def test_profile_average_parallelism(self):
        prof = profile(vector_product_dfg(4))
        assert prof.average_parallelism == pytest.approx(
            prof.compute_operation_count / prof.critical_path_operations
        )

    def test_io_words_excludes_constants(self):
        words = io_words(vector_product_dfg(4))
        assert words == {"inputs": 4, "outputs": 1}

    def test_software_operation_count_weights_multiplies(self):
        heavy = software_operation_count(vector_product_dfg(4))
        light = software_operation_count(chain_dfg(7))  # 7 adds
        assert heavy > light
