"""Shared fixtures for the test suite.

Expensive artefacts (the ILP-partitioned case study) are built once per
session; cheap builders are plain fixtures.
"""

from __future__ import annotations

import pytest

from partition_helpers import make_problem  # noqa: F401  (re-export for tests)
from repro.arch import generic_system, paper_case_study_system
from repro.experiments import build_case_study
from repro.jpeg import build_dct_task_graph
from repro.partition import PartitionProblem
from repro.taskgraph import Task, TaskGraph, clb_cost, figure4_example, linear_pipeline
from repro.units import ms, ns


@pytest.fixture(scope="session")
def paper_system():
    """The case-study system: XC4044 + 64K x 32 memory + PCI + Pentium host."""
    return paper_case_study_system()


@pytest.fixture(scope="session")
def dct_graph():
    """The 32-task DCT task graph with the paper's costs."""
    return build_dct_task_graph()


@pytest.fixture(scope="session")
def case_study_ilp():
    """The full case study with the ILP partitioner (built once per session)."""
    return build_case_study(use_ilp=True)


@pytest.fixture(scope="session")
def case_study_reference():
    """The case study with the paper's reference assignment (no ILP solve)."""
    return build_case_study(use_ilp=False)


@pytest.fixture
def small_system():
    """A small synthetic system used by unit tests that need fast solves."""
    return generic_system(
        clb_capacity=500,
        memory_words=256,
        reconfiguration_time=ms(1),
    )


@pytest.fixture
def small_pipeline_graph():
    """A four-stage pipeline whose optimal partitioning is easy to reason about."""
    return linear_pipeline(
        stage_clbs=[300, 300, 300, 300],
        stage_delays=[ns(100), ns(200), ns(300), ns(400)],
        words_per_edge=8,
        env_input_words=8,
        env_output_words=8,
    )


@pytest.fixture
def small_problem(small_pipeline_graph, small_system):
    """A partitioning problem small enough for every backend to solve quickly."""
    return PartitionProblem.from_system(small_pipeline_graph, small_system)


@pytest.fixture
def figure4_graph():
    """The reconstructed Figure-4 example graph."""
    return figure4_example()


@pytest.fixture
def two_task_graph():
    """The smallest interesting task graph: one producer feeding one consumer."""
    graph = TaskGraph("two")
    graph.add_task(Task("a", cost=clb_cost(100, ns(100))), env_input_words=4)
    graph.add_task(Task("b", cost=clb_cost(100, ns(200))), env_output_words=4)
    graph.add_edge("a", "b", words=4)
    return graph
