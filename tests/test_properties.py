"""Property-based tests (hypothesis) for core data structures and invariants.

Graphs and systems are drawn from :mod:`strategies` — the hypothesis
wrappers around the verification harness's seeded scenario families — so the
shapes fuzzed here are exactly the shapes ``repro verify`` fuzzes.
"""

import numpy as np
import pytest
import strategies as strat
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import clbs, generic_system
from repro.fission import (
    RtrTimingSpec,
    SequencerPlan,
    SequencingStrategy,
    count_configuration_loads,
    fdh_execution_time,
    idh_execution_time,
    run_sequencer,
    SequencerCallbacks,
    static_execution_time,
    static_timing_spec,
)
from repro.jpeg import HuffmanCode, forward_dct, inverse_dct, inverse_zigzag, zigzag
from repro.jpeg.zigzag import run_length_decode, run_length_encode
from repro.memmap import MemoryBlock, MemorySegment, SegmentKind, build_memory_map
from repro.memmap.address import AddressGenerator
from repro.partition import (
    IlpTemporalPartitioner,
    ListTemporalPartitioner,
    PartitionProblem,
    validate_partitioning,
)
from repro.taskgraph import (
    count_root_to_leaf_paths,
    critical_path,
    k_longest_path_delays,
    k_longest_paths,
    partition_lower_bound,
    path_delay,
    root_to_leaf_paths,
)
from repro.units import ceil_div, next_power_of_two
from repro.simulate import RtrExecutionSimulator

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10**9))
def test_next_power_of_two_properties(value):
    result = next_power_of_two(value)
    assert result >= max(1, value)
    assert result & (result - 1) == 0
    if value > 1:
        assert result < 2 * value


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
def test_ceil_div_properties(numerator, denominator):
    result = ceil_div(numerator, denominator)
    assert result * denominator >= numerator
    assert (result - 1) * denominator < numerator or result == 0


# ---------------------------------------------------------------------------
# DCT / codec stages
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_dct_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    block = rng.uniform(-128, 127, size=(4, 4))
    assert np.allclose(inverse_dct(forward_dct(block)), block, atol=1e-8)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_dct_preserves_energy(seed):
    """Orthonormal transform: Parseval's theorem holds."""
    rng = np.random.default_rng(seed)
    block = rng.uniform(-128, 127, size=(4, 4))
    assert np.sum(block ** 2) == pytest.approx(np.sum(forward_dct(block) ** 2), rel=1e-9)


@given(st.lists(st.integers(min_value=-255, max_value=255), min_size=16, max_size=16))
def test_zigzag_roundtrip_property(values):
    block = np.array(values).reshape(4, 4)
    assert np.array_equal(inverse_zigzag(zigzag(block), 4), block)


@given(st.lists(st.integers(min_value=-64, max_value=64), min_size=16, max_size=16))
def test_run_length_roundtrip_property(values):
    sequence = np.array(values)
    assert np.array_equal(run_length_decode(run_length_encode(sequence), 16), sequence)


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(-32, 32)), min_size=1, max_size=200
    )
)
@settings(max_examples=50, deadline=None)
def test_huffman_roundtrip_property(symbols):
    code = HuffmanCode.from_symbols(symbols)
    assert code.decode(code.encode(symbols)) == symbols
    assert code.is_prefix_free()


@given(
    st.dictionaries(
        st.integers(0, 30), st.integers(min_value=1, max_value=1000), min_size=2, max_size=20
    )
)
@settings(max_examples=50, deadline=None)
def test_huffman_is_near_entropy_optimal(frequencies):
    """Average code length is within one bit of the entropy (Huffman optimality)."""
    code = HuffmanCode.from_frequencies(frequencies)
    total = sum(frequencies.values())
    probabilities = [count / total for count in frequencies.values()]
    entropy = -sum(p * np.log2(p) for p in probabilities if p > 0)
    assert entropy <= code.expected_length(frequencies) <= entropy + 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Memory blocks and address generation
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=8))
def test_memory_block_offsets_are_disjoint(sizes):
    block = MemoryBlock(partition_index=1)
    for index, words in enumerate(sizes):
        block.add_segment(MemorySegment(f"M{index}", words, SegmentKind.CROSS_INPUT))
    intervals = sorted(
        (block.offset_of(f"M{index}"), block.offset_of(f"M{index}") + words)
        for index, words in enumerate(sizes)
    )
    for (_, first_end), (second_start, _) in zip(intervals, intervals[1:]):
        assert second_start >= first_end
    assert block.natural_words == sum(sizes)


@given(
    st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=5),
    st.integers(min_value=1, max_value=16),
)
def test_address_generation_no_overlap_between_iterations(sizes, iterations):
    block = MemoryBlock(partition_index=1)
    for index, words in enumerate(sizes):
        block.add_segment(MemorySegment(f"M{index}", words, SegmentKind.CROSS_INPUT))
    block.round_to_power_of_two()
    generator = AddressGenerator(block, scheme="concatenation")
    seen = set()
    for iteration in range(iterations):
        for index, words in enumerate(sizes):
            for address in generator.iter_segment_addresses(iteration, f"M{index}"):
                assert address not in seen
                seen.add(address)
    first, last = generator.address_range(iterations)
    assert all(first <= address < last for address in seen)


# ---------------------------------------------------------------------------
# Partitioning invariants on random task graphs
# ---------------------------------------------------------------------------

@given(strat.task_graphs(min_tasks=6, max_tasks=18))
@SLOW
def test_list_partitioner_always_valid(graph):
    system = generic_system(clb_capacity=800, memory_words=8192, reconfiguration_time=0.01)
    problem = PartitionProblem.from_system(graph, system)
    result = ListTemporalPartitioner().partition(problem)
    report = validate_partitioning(problem, result)
    assert report.is_valid
    assert result.partition_count >= partition_lower_bound(graph, clbs(800))


@given(strat.task_graphs(min_tasks=4, max_tasks=10))
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ilp_partitioner_no_worse_than_list(graph):
    system = generic_system(clb_capacity=700, memory_words=8192, reconfiguration_time=0.01)
    problem = PartitionProblem.from_system(graph, system)
    ilp = IlpTemporalPartitioner().partition(problem)
    heuristic = ListTemporalPartitioner().partition(problem)
    assert validate_partitioning(problem, ilp).is_valid
    assert ilp.total_latency <= heuristic.total_latency + 1e-12


@given(strat.task_graphs(min_tasks=6, max_tasks=20), strat.systems(min_memory=8192))
@SLOW
def test_memory_map_boundaries_match_partitioning(graph, system):
    problem = PartitionProblem.from_system(graph, system)
    result = ListTemporalPartitioner().partition(problem)
    memory_map = build_memory_map(result)
    from repro.memmap import boundary_words_from_map

    for boundary in range(1, result.partition_count):
        assert boundary_words_from_map(memory_map, boundary) == result.boundary_words(boundary)


# ---------------------------------------------------------------------------
# Nonenumerative k-longest-paths invariants
# ---------------------------------------------------------------------------

#: All five small verification families, reconvergent and degenerate alike —
#: the k-paths analysis must agree with enumeration on every shape.
_KPATHS_FAMILIES = strat.CONNECTED_FAMILIES + ("degenerate",)


@given(strat.task_graphs(families=_KPATHS_FAMILIES, min_tasks=1, max_tasks=16))
@settings(max_examples=40, deadline=None)
def test_kpaths_top1_is_the_critical_path_bitwise(graph):
    """The nonenumerative top-1 delay equals the critical-path DP, bitwise."""
    _, expected = critical_path(graph)
    top1 = k_longest_path_delays(graph, 1)
    assert len(top1) == 1
    assert float(top1[0]).hex() == float(expected).hex()


@given(
    strat.task_graphs(families=_KPATHS_FAMILIES, min_tasks=1, max_tasks=14),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_kpaths_multiset_matches_enumeration_bitwise(graph, k):
    """Top-k delays == the k largest enumerated path delays, bit-identical."""
    enumerated = sorted(
        (path_delay(graph, path) for path in root_to_leaf_paths(graph)),
        reverse=True,
    )
    top = k_longest_path_delays(graph, k)
    assert [float(d).hex() for d in top] == [
        float(d).hex() for d in enumerated[:k]
    ]


@given(strat.task_graphs(families=_KPATHS_FAMILIES, min_tasks=1, max_tasks=14))
@settings(max_examples=25, deadline=None)
def test_kpaths_reconstructed_paths_are_real_and_distinct(graph):
    """Reconstructed paths are genuine root-to-leaf paths, each counted once,
    and each reported delay is bitwise the delay of its own path."""
    count = count_root_to_leaf_paths(graph)
    results = k_longest_paths(graph, min(count, 25))
    seen = set()
    for path, delay in results:
        assert path not in seen
        seen.add(path)
        assert not graph.predecessors(path[0])
        assert not graph.successors(path[-1])
        for producer, consumer in zip(path, path[1:]):
            assert consumer in graph.successors(producer)
        assert float(path_delay(graph, path)).hex() == float(delay).hex()


# ---------------------------------------------------------------------------
# Sequencing / timing invariants
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=0, max_value=5000),
)
def test_configuration_load_counts_match_trace(partitions, k, total):
    for strategy in SequencingStrategy:
        plan = SequencerPlan(strategy, partition_count=partitions, computations_per_run=k)
        counter = {"configs": 0, "computations": 0}
        callbacks = SequencerCallbacks(
            load_configuration=lambda p: counter.__setitem__("configs", counter["configs"] + 1),
            load_input_block=lambda p, r: None,
            start_and_wait=lambda p, r, c: counter.__setitem__(
                "computations", counter["computations"] + c
            ),
            read_output_block=lambda p, r: None,
        )
        run_sequencer(plan, total, callbacks)
        assert counter["configs"] == count_configuration_loads(plan, total)
        # Every computation is executed on every partition exactly once.
        assert counter["computations"] == total * partitions


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=20000),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_simulator_matches_analytic_model_property(partitions, k, total, seed):
    """For arbitrary designs the event simulator equals the closed-form model."""
    rng = np.random.default_rng(seed)
    delays = [float(rng.uniform(1e-7, 1e-5)) for _ in range(partitions)]
    env_in = [int(rng.integers(0, 8)) for _ in range(partitions)]
    env_out = [int(rng.integers(0, 8)) for _ in range(partitions)]
    cross_in = [0] + [int(rng.integers(0, 8)) for _ in range(partitions - 1)]
    cross_out = [int(rng.integers(0, 8)) for _ in range(partitions - 1)] + [0]
    spec = RtrTimingSpec(
        partition_delays=delays,
        partition_env_input_words=env_in,
        partition_env_output_words=env_out,
        partition_cross_input_words=cross_in,
        partition_cross_output_words=cross_out,
        computations_per_run=k,
    )
    system = generic_system(memory_words=10**9, reconfiguration_time=0.001)
    simulator = RtrExecutionSimulator(system, check_memory=False)
    for strategy, analytic_fn in (
        (SequencingStrategy.FDH, fdh_execution_time),
        (SequencingStrategy.IDH, idh_execution_time),
    ):
        simulated = simulator.simulate(spec, strategy, total)
        analytic = analytic_fn(spec, total, system)
        # The simulator accumulates tens of thousands of small event durations
        # while the analytic model multiplies once, so allow for floating-point
        # accumulation error (relative 1e-6 is far below any modelling effect).
        assert simulated.total_time == pytest.approx(analytic.total, rel=1e-6, abs=1e-9)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=30, deadline=None)
def test_static_time_monotone_in_workload(blocks, batch):
    spec = static_timing_spec(1e-5, 16, 16, blocks_per_invocation=batch)
    system = generic_system(reconfiguration_time=0.01)
    smaller = static_execution_time(spec, blocks, system).total
    larger = static_execution_time(spec, blocks + 1, system).total
    assert larger >= smaller
