"""Tests for the nonenumerative k-longest-paths analysis (repro.taskgraph.kpaths)."""

import pytest

from repro.errors import GraphError
from repro.taskgraph import (
    Task,
    TaskGraph,
    clb_cost,
    count_root_to_leaf_paths,
    critical_path,
    edge_criticalities,
    fork_join,
    k_longest_path_delays,
    k_longest_paths,
    longest_path_through,
    path_delay,
    random_dsp_task_graph,
    root_to_leaf_paths,
    root_to_leaf_paths_by_delay,
)


def diamond_chain(motifs, *, delay_step=0.5):
    """``motifs`` diamonds in series: exactly ``2**motifs`` root-leaf paths.

    Delays are small multiples of 0.5 (exact in binary), so every path sum
    is exact and bitwise comparisons carry no ulp caveats.
    """
    graph = TaskGraph(f"diamond_chain_{motifs}")
    previous = None
    for index in range(motifs):
        head = f"h{index:03d}"
        top = f"t{index:03d}"
        bottom = f"b{index:03d}"
        for offset, name in enumerate((head, top, bottom)):
            graph.add_task(
                Task(name, cost=clb_cost(10, delay_step * (offset + 1)))
            )
        if previous is not None:
            graph.add_edge(previous, head, 4)
        graph.add_edge(head, top, 4)
        graph.add_edge(head, bottom, 4)
        tail = f"j{index:03d}"
        graph.add_task(Task(tail, cost=clb_cost(10, delay_step)))
        graph.add_edge(top, tail, 4)
        graph.add_edge(bottom, tail, 4)
        previous = tail
    return graph


SMALL_GRAPHS = [
    fork_join(branch_count=4),
    random_dsp_task_graph(task_count=18, seed=3, max_level_width=4),
    diamond_chain(3),
]


class TestKLongestPathDelays:
    @pytest.mark.parametrize("graph", SMALL_GRAPHS, ids=lambda g: g.name)
    def test_matches_enumeration_bitwise(self, graph):
        enumerated = sorted(
            (path_delay(graph, path) for path in root_to_leaf_paths(graph)),
            reverse=True,
        )
        for k in (1, 2, len(enumerated), len(enumerated) + 5):
            delays = k_longest_path_delays(graph, k)
            assert [float(d).hex() for d in delays] == [
                float(d).hex() for d in enumerated[:k]
            ]

    def test_top1_is_the_critical_path(self):
        graph = random_dsp_task_graph(task_count=30, seed=7)
        _, expected = critical_path(graph)
        assert float(k_longest_path_delays(graph, 1)[0]).hex() == float(expected).hex()

    def test_k_below_one_rejected(self):
        graph = fork_join()
        with pytest.raises(GraphError):
            k_longest_path_delays(graph, 0)
        with pytest.raises(GraphError):
            k_longest_paths(graph, -1)

    def test_no_enumeration_needed_on_exponential_graphs(self):
        # 2**40 paths: enumeration is hopeless, the tables are trivial.
        graph = diamond_chain(40)
        assert count_root_to_leaf_paths(graph) == 2**40
        cp_path, cp_delay = critical_path(graph)
        delays = k_longest_path_delays(graph, 8)
        assert len(delays) == 8
        assert float(delays[0]).hex() == float(cp_delay).hex()
        assert delays == sorted(delays, reverse=True)
        # The reconstructed winner is the critical path itself.
        paths = k_longest_paths(graph, 1)
        assert paths[0][0] == tuple(cp_path)

    def test_deterministic(self):
        graph = random_dsp_task_graph(task_count=24, seed=11)
        assert k_longest_paths(graph, 6) == k_longest_paths(graph, 6)


class TestPathSetGeneration:
    @pytest.mark.parametrize("graph", SMALL_GRAPHS, ids=lambda g: g.name)
    def test_full_path_set_matches_enumeration(self, graph):
        by_delay = root_to_leaf_paths_by_delay(graph)
        assert set(by_delay) == {tuple(p) for p in root_to_leaf_paths(graph)}
        delays = [path_delay(graph, path) for path in by_delay]
        assert delays == sorted(delays, reverse=True)

    def test_over_limit_raises_before_materialising_any_path(self):
        graph = diamond_chain(40)  # 2**40 paths; must fail fast
        with pytest.raises(GraphError, match="more than 1000"):
            root_to_leaf_paths_by_delay(graph, limit=1000)

    def test_no_limit_means_no_guard(self):
        graph = diamond_chain(3)
        assert len(root_to_leaf_paths_by_delay(graph, limit=None)) == 8


class TestCriticalities:
    def test_task_criticality_peaks_at_the_critical_delay(self):
        graph = diamond_chain(5)
        cp_path, cp_delay = critical_path(graph)
        through = longest_path_through(graph)
        assert set(through) == set(graph.task_names())
        assert float(max(through.values())).hex() == float(cp_delay).hex()
        # Every task on the critical path sees the full critical delay.
        for name in cp_path:
            assert float(through[name]).hex() == float(cp_delay).hex()

    def test_edge_criticality_peaks_at_the_critical_delay(self):
        graph = diamond_chain(5)
        _, cp_delay = critical_path(graph)
        per_edge = edge_criticalities(graph)
        assert set(per_edge) == set(graph.edges())
        assert float(max(per_edge.values())).hex() == float(cp_delay).hex()
        # No path through an edge can beat the critical path.
        assert all(value <= cp_delay for value in per_edge.values())
