"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.taskgraph import linear_pipeline, save
from repro.units import ns


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.taskgraph == "dct"
        assert args.partitioner == "ilp"
        assert args.system == "paper-xc4044"

    def test_flow_options(self):
        args = build_parser().parse_args(
            ["flow", "--strategy", "fdh", "--round-blocks", "--blocks", "100"]
        )
        assert args.strategy == "fdh" and args.round_blocks and args.blocks == 100

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--partitioner", "annealing"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "paper-xc4044" in out and "XC4044" in out

    def test_partition_dct_with_list_heuristic(self, capsys):
        assert main(["partition", "--partitioner", "list"]) == 0
        out = capsys.readouterr().out
        assert "3 partitions" in out
        assert "10960 ns" in out.replace(",", "")

    def test_partition_dct_with_ilp(self, capsys):
        assert main(["partition", "--partitioner", "ilp"]) == 0
        out = capsys.readouterr().out
        assert "8440 ns" in out.replace(",", "")
        assert "variables" in out

    def test_partition_custom_taskgraph_file(self, tmp_path, capsys):
        graph = linear_pipeline([200, 200, 200], [ns(100), ns(200), ns(300)])
        path = tmp_path / "pipeline.json"
        save(graph, path)
        assert main([
            "partition", str(path), "--partitioner", "list",
            "--system", "custom", "--clbs", "250", "--memory", "1024", "--ct", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 partitions" in out

    def test_flow_with_comparison(self, capsys):
        assert main([
            "flow", "--partitioner", "list", "--strategy", "idh",
            "--blocks", "100000", "--static-block-delay-ns", "16000",
        ]) == 0
        out = capsys.readouterr().out
        assert "host sequencing code" in out
        assert "RTR" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "never" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "XC6000" in out

    def test_case_study_command(self, capsys):
        assert main(["case-study", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "k=2048" in out and "XC6000" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        # A task graph that cannot be partitioned (task larger than the device)
        # must produce exit code 2 and an error message, not a traceback.
        graph = linear_pipeline([5000], [ns(100)])
        path = tmp_path / "too_big.json"
        save(graph, path)
        code = main(["partition", str(path), "--system", "custom", "--clbs", "100"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
