"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.taskgraph import linear_pipeline, save
from repro.units import ns


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.taskgraph == "dct"
        assert args.partitioner == "ilp"
        assert args.system == "paper-xc4044"

    def test_flow_options(self):
        args = build_parser().parse_args(
            ["flow", "--strategy", "fdh", "--round-blocks", "--blocks", "100"]
        )
        assert args.strategy == "fdh" and args.round_blocks and args.blocks == 100

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--partitioner", "annealing"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ") and out.split()[1][0].isdigit()

    def test_workloads_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workloads"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "paper-xc4044" in out and "XC4044" in out

    def test_partition_dct_with_list_heuristic(self, capsys):
        assert main(["partition", "--partitioner", "list"]) == 0
        out = capsys.readouterr().out
        assert "3 partitions" in out
        assert "10960 ns" in out.replace(",", "")

    def test_partition_dct_with_ilp(self, capsys):
        assert main(["partition", "--partitioner", "ilp"]) == 0
        out = capsys.readouterr().out
        assert "8440 ns" in out.replace(",", "")
        assert "variables" in out

    def test_partition_custom_taskgraph_file(self, tmp_path, capsys):
        graph = linear_pipeline([200, 200, 200], [ns(100), ns(200), ns(300)])
        path = tmp_path / "pipeline.json"
        save(graph, path)
        assert main([
            "partition", str(path), "--partitioner", "list",
            "--system", "custom", "--clbs", "250", "--memory", "1024", "--ct", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 partitions" in out

    def test_flow_with_comparison(self, capsys):
        assert main([
            "flow", "--partitioner", "list", "--strategy", "idh",
            "--blocks", "100000", "--static-block-delay-ns", "16000",
        ]) == 0
        out = capsys.readouterr().out
        assert "host sequencing code" in out
        assert "RTR" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "never" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "XC6000" in out

    def test_case_study_command(self, capsys):
        assert main(["case-study", "--no-ilp"]) == 0
        out = capsys.readouterr().out
        assert "k=2048" in out and "XC6000" in out

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("jpeg_dct", "fir_filterbank", "matmul_pipeline",
                     "random_layered", "wavelet_pyramid"):
            assert name in out

    def test_workloads_list_survives_a_broken_builder(self, capsys):
        """A workload whose builder raises must not break the listing."""
        from repro.errors import SpecificationError
        from repro.workloads import register_workload, unregister_workload

        @register_workload("broken_for_list_test", description="always fails")
        def build_broken(**_params):
            raise SpecificationError("synthetic failure for the listing test")

        try:
            assert main(["workloads", "list"]) == 0
            out = capsys.readouterr().out
            assert "broken_for_list_test" in out and "unavailable" in out
        finally:
            unregister_workload("broken_for_list_test")

    def test_workloads_show(self, capsys):
        assert main(["workloads", "show", "matmul_pipeline"]) == 0
        out = capsys.readouterr().out
        assert "matmul_pipeline" in out and "8 tasks" in out and "variants" in out

    def test_workloads_show_unknown_exits_cleanly(self, capsys):
        assert main(["workloads", "show", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_flow_with_workload(self, capsys):
        assert main(["flow", "--workload", "matmul_pipeline"]) == 0
        out = capsys.readouterr().out
        assert "2 configurations" in out and "host sequencing code" in out

    def test_flow_single_json_shares_the_batch_serialisation(self, capsys):
        """``--format json`` without ``--batch`` emits the same row shape."""
        assert main(["flow", "--workload", "jpeg_dct", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["status"] == "ok"
        assert rows[0]["workload"] == "jpeg_dct"
        # Derived metrics are canonicalised: the shortest decimal form,
        # never a binary-float artifact like 8439.999999999998.
        assert rows[0]["block_delay_ns"] == 8440.0
        assert json.dumps(rows[0]["block_delay_ns"]) == "8440.0"

    def test_flow_batch_requires_workload(self, capsys):
        assert main(["flow", "--batch"]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_flow_rejects_file_and_workload_together(self, capsys):
        assert main(["flow", "graph.json", "--workload", "jpeg_dct"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_flow_batch_honours_system_and_ct_overrides(self, capsys):
        assert main([
            "flow", "--workload", "matmul_pipeline", "--batch",
            "--system", "custom", "--clbs", "800", "--memory", "4096",
            "--ct", "1", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["status"] == "ok"
        # CT=1ms (not the workload default 2ms): 2 reconfigurations + compute.
        assert rows[0]["total_latency_s"] == pytest.approx(
            2 * 0.001 + rows[0]["block_delay_ns"] * 1e-9
        )

    def test_flow_batch_with_ct_sweep_csv(self, capsys):
        assert main([
            "flow", "--workload", "matmul_pipeline", "--batch",
            "--ct-sweep", "1,5", "--format", "csv",
        ]) == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 3  # header + one row per CT value
        assert "matmul_pipeline[" not in lines[1]  # default params, no variant tag
        assert "@ct=1ms" in lines[1] and "@ct=5ms" in lines[2]
        assert "flow batch of 2 jobs" in captured.err

    def test_explore_random_smoke(self, tmp_path, capsys):
        store = tmp_path / "run.jsonl"
        assert main([
            "explore", "--workload", "matmul_pipeline", "--strategy", "random",
            "--budget", "6", "--partitioners", "list,level",
            "--ct-sweep", "1,5", "--store", str(store), "--format", "json",
        ]) == 0
        captured = capsys.readouterr()
        front = json.loads(captured.out)
        assert front and "latency" in front[0] and "throughput" in front[0]
        assert "flow jobs evaluated: 6" in captured.err
        assert store.exists()

    def test_explore_resume_serves_from_the_store(self, tmp_path, capsys):
        store = tmp_path / "run.jsonl"
        argv = [
            "explore", "--workload", "matmul_pipeline", "--strategy", "anneal",
            "--budget", "8", "--partitioners", "list,level",
            "--ct-sweep", "1,5,20", "--store", str(store), "--resume",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "flow jobs evaluated: 0" in captured.err

    def test_explore_refuses_to_clobber_an_existing_store(self, tmp_path, capsys):
        store = tmp_path / "run.jsonl"
        argv = [
            "explore", "--workload", "matmul_pipeline", "--strategy", "grid",
            "--budget", "2", "--partitioners", "list", "--ct-sweep", "1,5",
            "--store", str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Without --resume or --fresh an existing store is refused intact.
        assert main(argv) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(argv + ["--resume", "--fresh"]) == 2
        capsys.readouterr()
        # --fresh deliberately starts over.
        assert main(argv + ["--fresh"]) == 0

    def test_explore_rejects_unknown_objective(self, tmp_path, capsys):
        code = main([
            "explore", "--workload", "matmul_pipeline",
            "--objectives", "latency,nope", "--store", str(tmp_path / "r.jsonl"),
        ])
        assert code == 2
        assert "unknown objective" in capsys.readouterr().err
        assert not (tmp_path / "r.jsonl").exists()

    def test_flow_with_unknown_workload_exits_cleanly(self, capsys):
        assert main(["flow", "--workload", "no_such_workload"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no_such_workload" in err and "known:" in err

    def test_flow_batch_with_unknown_workload_exits_cleanly(self, capsys):
        assert main(["flow", "--workload", "no_such_workload", "--batch"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no_such_workload" in err

    def test_explore_resume_refuses_wrong_schema_version(self, tmp_path, capsys):
        store = tmp_path / "run.jsonl"
        store.write_text(
            '{"kind":"meta","version":999,"space":"","context":{}}\n',
            encoding="utf-8",
        )
        code = main([
            "explore", "--workload", "matmul_pipeline", "--strategy", "grid",
            "--budget", "2", "--partitioners", "list", "--ct-sweep", "1",
            "--store", str(store), "--resume",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "schema version" in err
        # The incompatible store was refused, never truncated.
        assert "999" in store.read_text(encoding="utf-8")

    def test_explore_resume_refuses_mismatched_context(self, tmp_path, capsys):
        store = tmp_path / "run.jsonl"
        argv = [
            "explore", "--workload", "matmul_pipeline", "--strategy", "grid",
            "--budget", "2", "--partitioners", "list", "--ct-sweep", "1",
            "--store", str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Resuming under different evaluation context would silently serve
        # stale metrics; the CLI must refuse with a readable message.
        code = main(argv + ["--resume", "--eval-blocks", "999"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "context" in err
        assert "mismatching field(s)" in err and "eval_blocks" in err

    def test_verify_rejects_zero_scenarios(self, capsys):
        assert main(["verify", "--scenarios", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--scenarios must be at least 1" in err

    def test_verify_rejects_unknown_family(self, capsys):
        assert main(["verify", "--scenarios", "2", "--families", "nope"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown scenario family" in err

    def test_error_reported_cleanly(self, tmp_path, capsys):
        # A task graph that cannot be partitioned (task larger than the device)
        # must produce exit code 2 and an error message, not a traceback.
        graph = linear_pipeline([5000], [ns(100)])
        path = tmp_path / "too_big.json"
        save(graph, path)
        code = main(["partition", str(path), "--system", "custom", "--clbs", "100"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestShardedCli:
    """``repro explore --shards`` and ``repro frontier --store`` end to end."""

    def _explore_argv(self, store, extra=()):
        return [
            "explore", "--workload", "matmul_pipeline", "--strategy", "grid",
            "--budget", "8", "--partitioners", "list,level", "--ct-sweep",
            "1,5", "--store", str(store), "--format", "json",
        ] + list(extra)

    def test_sharded_merge_is_byte_identical_to_unsharded(self, tmp_path, capsys):
        solo_out = tmp_path / "solo.json"
        assert main(
            self._explore_argv(tmp_path / "solo.jsonl")
            + ["--output", str(solo_out)]
        ) == 0
        capsys.readouterr()
        sharded_out = tmp_path / "sharded.json"
        assert main(
            self._explore_argv(tmp_path / "run.jsonl")
            + ["--shards", "2", "--output", str(sharded_out)]
        ) == 0
        err = capsys.readouterr().err
        assert "shard 1/2" in err and "shard 2/2" in err
        assert solo_out.read_bytes() == sharded_out.read_bytes()
        shard_stores = sorted(tmp_path.glob("run.shard-*-of-2.jsonl"))
        assert [path.name for path in shard_stores] == [
            "run.shard-0-of-2.jsonl", "run.shard-1-of-2.jsonl",
        ]
        # The merged union frontier of the shard stores, via the frontier
        # command, is the same bytes again.
        frontier_out = tmp_path / "frontier.json"
        argv = ["frontier", "--format", "json", "--output", str(frontier_out)]
        for path in shard_stores:
            argv += ["--store", str(path)]
        assert main(argv) == 0
        assert "merged" in capsys.readouterr().err
        assert frontier_out.read_bytes() == solo_out.read_bytes()

    def test_shard_index_runs_one_shard_and_hints_the_merge(self, tmp_path, capsys):
        assert main(
            self._explore_argv(
                tmp_path / "run.jsonl",
                ["--shards", "2", "--shard-index", "0"],
            )
        ) in (0, 1)  # one shard's own front may be empty
        err = capsys.readouterr().err
        assert "shard 1/2" in err or "shard 0" in err.replace("1/2", "")
        assert "repro frontier" in err and "--store" in err
        assert (tmp_path / "run.shard-0-of-2.jsonl").exists()
        assert not (tmp_path / "run.shard-1-of-2.jsonl").exists()

    def test_sharded_refuses_existing_store_then_resumes(self, tmp_path, capsys):
        argv = self._explore_argv(tmp_path / "run.jsonl", ["--shards", "2"])
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(argv + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "0 flow" in err

    def test_sharded_rejects_adaptive_strategy(self, tmp_path, capsys):
        code = main([
            "explore", "--workload", "matmul_pipeline", "--strategy", "anneal",
            "--budget", "4", "--partitioners", "list", "--ct-sweep", "1",
            "--store", str(tmp_path / "run.jsonl"), "--shards", "2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot be sharded" in err

    def test_shard_flag_validation(self, tmp_path, capsys):
        base = [
            "explore", "--workload", "matmul_pipeline", "--budget", "2",
            "--partitioners", "list", "--ct-sweep", "1",
            "--store", str(tmp_path / "run.jsonl"),
        ]
        assert main(base + ["--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(base + ["--shards", "2", "--shard-index", "2"]) == 2
        assert "--shard-index" in capsys.readouterr().err

    def test_frontier_store_rejects_mixed_contexts(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(self._explore_argv(a)) == 0
        assert main(self._explore_argv(b, ["--eval-blocks", "999"])) == 0
        capsys.readouterr()
        code = main(["frontier", "--store", str(a), "--store", str(b)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "context" in err
        # The refusal names exactly which context field disagrees, with
        # both values, so a two-machine operator can see what to fix.
        assert "mismatching field(s)" in err
        assert "eval_blocks" in err and "999" in err

    def test_frontier_without_store_is_the_paper_report(self, capsys):
        assert main(["frontier"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out.lower() or "Pareto" in out


class TestSchedulerCli:
    """Argument handling of ``repro schedule`` / ``repro explore --scheduler``."""

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.ranges == 16
        assert args.lease_timeout == 30.0
        assert args.port == 8788
        assert args.flow_workers == 0

    def test_schedule_rejects_adaptive_strategies_at_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--strategy", "anneal"])

    def test_schedule_rejects_zero_ranges(self, tmp_path, capsys):
        code = main([
            "schedule", "--workload", "matmul_pipeline", "--budget", "2",
            "--partitioners", "list", "--ct-sweep", "1",
            "--store", str(tmp_path / "run.jsonl"), "--ranges", "0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "range" in err

    def test_worker_reports_an_unreachable_scheduler_cleanly(self, capsys):
        # Nothing listens on this port: the worker must exit 2 with a
        # readable transport error, not a traceback.
        code = main([
            "explore", "--scheduler", "http://127.0.0.1:9/",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
