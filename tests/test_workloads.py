"""Tests for the workload registry and the batched flow engine."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError, WorkloadError
from repro.partition import PartitionProblem
from repro.runtime import EngineConfig, PartitionEngine, problem_fingerprint
from repro.runtime.jobs import ResultSource
from repro.synth import FlowEngine, FlowJob, FlowOptions, workload_flow_jobs
from repro.taskgraph import TaskGraph, linear_pipeline
from repro.units import ns
from repro.workloads import (
    Workload,
    get_workload,
    iter_workloads,
    register,
    register_workload,
    unregister_workload,
    workload_names,
)

BUILTIN_WORKLOADS = (
    "jpeg_dct",
    "fir_filterbank",
    "random_layered",
    "wavelet_pyramid",
    "matmul_pipeline",
)


def _dummy_builder(**_params) -> TaskGraph:
    return linear_pipeline([100, 100], [ns(100), ns(200)])


# ---------------------------------------------------------------------------
# Registry behaviour
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_catalog_is_registered(self):
        names = workload_names()
        for name in BUILTIN_WORKLOADS:
            assert name in names

    def test_get_unknown_workload_names_the_known_ones(self):
        with pytest.raises(WorkloadError, match="jpeg_dct"):
            get_workload("definitely_not_registered")

    def test_duplicate_registration_is_an_error(self):
        register(Workload(name="dup_test", builder=_dummy_builder))
        try:
            with pytest.raises(WorkloadError, match="already registered"):
                register(Workload(name="dup_test", builder=_dummy_builder))
            # replace=True overwrites deliberately.
            replacement = Workload(
                name="dup_test", builder=_dummy_builder, description="v2"
            )
            register(replacement, replace=True)
            assert get_workload("dup_test").description == "v2"
        finally:
            unregister_workload("dup_test")
        with pytest.raises(WorkloadError, match="not registered"):
            unregister_workload("dup_test")

    def test_decorator_registers_and_returns_the_builder(self):
        @register_workload("decorated_test", description="via decorator")
        def build(**_params) -> TaskGraph:
            return _dummy_builder()

        try:
            assert build is not None and callable(build)
            workload = get_workload("decorated_test")
            assert workload.description == "via decorator"
            assert len(workload.build_graph()) == 2
        finally:
            unregister_workload("decorated_test")

    def test_iteration_is_name_sorted(self):
        names = [workload.name for workload in iter_workloads()]
        assert names == sorted(names)

    def test_builtin_catalog_imported_cleanly(self):
        from repro.workloads import catalog_errors

        assert catalog_errors() == []

    def test_unknown_builder_parameter_is_a_workload_error(self):
        with pytest.raises(WorkloadError, match="rejected parameters"):
            get_workload("matmul_pipeline").build_graph(bogus_parameter=1)

    def test_empty_sweep_values_rejected(self):
        with pytest.raises(WorkloadError, match="empty value list"):
            Workload(name="bad_sweep", builder=_dummy_builder, sweep={"seed": ()})


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    def _fingerprint(self, name: str, **params) -> str:
        workload = get_workload(name)
        graph = workload.build_graph(**params)
        problem = PartitionProblem.from_system(graph, workload.default_system())
        return problem_fingerprint(problem)

    def test_same_seed_same_canonical_hash(self):
        assert self._fingerprint("random_layered", seed=7) == self._fingerprint(
            "random_layered", seed=7
        )

    def test_different_seed_different_canonical_hash(self):
        assert self._fingerprint("random_layered", seed=0) != self._fingerprint(
            "random_layered", seed=1
        )

    def test_variants_are_deterministic_and_unique(self):
        workload = get_workload("random_layered")
        first = workload.variants()
        second = workload.variants()
        assert [v.name for v in first] == [v.name for v in second]
        assert len({v.name for v in first}) == len(first)
        # The sweep expands the full cartesian product.
        assert len(first) == len(workload.sweep["seed"]) * len(
            workload.sweep["task_count"]
        )

    def test_unswept_workload_has_single_default_variant(self):
        variants = get_workload("jpeg_dct").variants()
        assert len(variants) == 1
        assert variants[0].name == "jpeg_dct"

    def test_synthetic_graphs_have_documented_shapes(self):
        assert len(get_workload("wavelet_pyramid").build_graph(levels=3)) == 7
        assert len(get_workload("matmul_pipeline").build_graph(dim=4)) == 8
        assert len(get_workload("random_layered").build_graph(task_count=12)) == 12


# ---------------------------------------------------------------------------
# FlowEngine
# ---------------------------------------------------------------------------

class TestFlowEngine:
    def _job(self, name: str, **params) -> FlowJob:
        workload = get_workload(name)
        return FlowJob(
            graph=workload.build_graph(**params),
            system=workload.default_system(),
            options=workload.flow_options(),
            tag=name,
            workload=name,
        )

    def test_batch_across_workloads_meets_expectations(self):
        engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        jobs = [self._job("jpeg_dct"), self._job("matmul_pipeline"),
                self._job("wavelet_pyramid")]
        batch = engine.run_batch(jobs)
        assert batch.ok, batch.describe()
        for report in batch:
            expected = get_workload(report.job.workload).expectations["partitions"]
            assert report.design.partition_count == expected
        # The paper's case study keeps its headline numbers through the
        # batch path: 3 partitions, k = 2048.
        jpeg = batch[0].design
        assert jpeg.computations_per_run == 2048

    def test_warm_cache_round_trip(self):
        engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        jobs = [self._job("matmul_pipeline")]
        cold = engine.run_batch(jobs)
        assert cold[0].partition_source == ResultSource.SOLVE.value
        warm = engine.run_batch(jobs)
        assert warm[0].partition_source == ResultSource.MEMORY_CACHE.value
        assert warm[0].cached_partition
        assert (
            warm[0].design.partitioning.assignment
            == cold[0].design.partitioning.assignment
        )
        assert engine.stats.cache.misses == 1
        assert engine.stats.cache.memory_hits == 1

    def test_structured_estimate_failure_does_not_sink_the_batch(self):
        # A task without cost or DFG cannot be estimated; with a second,
        # healthy job in the same batch only the broken one fails.
        from repro.taskgraph import Task

        broken = TaskGraph("unestimable")
        broken.add_task(Task("nocost"), env_input_words=1)
        engine = FlowEngine()
        good = self._job("matmul_pipeline")
        batch = engine.run_batch(
            [FlowJob(graph=broken, system=good.system, tag="broken"), good]
        )
        assert not batch.ok
        assert len(batch.failures()) == 1
        report = batch[0]
        assert report.failed_stage == "estimate"
        assert report.error and report.error_kind
        assert "failed:estimate" in report.row()["status"]
        assert batch[1].ok

    def test_per_stage_timings_are_recorded(self):
        engine = FlowEngine()
        report = engine.run_batch([self._job("matmul_pipeline")])[0]
        for stage in ("estimate", "partition", "memory-map", "fission",
                      "timing", "assemble"):
            assert stage in report.stage_seconds
        assert report.wall_time == pytest.approx(
            sum(report.stage_seconds.values())
        )

    def test_run_single_raises_structured_error(self):
        engine = FlowEngine()
        broken = TaskGraph("unestimable2")
        from repro.taskgraph import Task

        broken.add_task(Task("nocost"), env_input_words=1)
        system = get_workload("matmul_pipeline").default_system()
        with pytest.raises(SynthesisError, match="estimate"):
            engine.run(FlowJob(graph=broken, system=system, tag="broken"))

    def test_engine_and_config_are_mutually_exclusive(self):
        with pytest.raises(SynthesisError, match="not both"):
            FlowEngine(engine=PartitionEngine(EngineConfig()), workers=2)

    def test_estimation_never_mutates_the_submitted_graph(self):
        """A job's graph is estimated on a copy: a graph shared across jobs
        targeting different systems must not inherit the first job's costs."""
        workload = get_workload("fir_filterbank")
        graph = workload.build_graph()
        engine = FlowEngine()
        report = engine.run_batch([
            FlowJob(graph=graph, system=workload.default_system(),
                    options=workload.flow_options(), tag="fir")
        ])[0]
        assert report.ok
        assert not graph.all_estimated()
        assert report.design.partitioning.graph.all_estimated()

    def test_batch_dedup_across_identical_flow_jobs(self):
        engine = FlowEngine()
        job = self._job("matmul_pipeline")
        batch = engine.run_batch([job, job])
        assert batch.ok
        assert batch[0].partition_source == ResultSource.SOLVE.value
        assert batch[1].partition_source == ResultSource.BATCH_DEDUP.value

    def test_rows_carry_the_partition_cache_flag(self):
        engine = FlowEngine(engine=PartitionEngine(EngineConfig()))
        jobs = [self._job("matmul_pipeline")]
        cold_rows = engine.run_batch(jobs).rows()
        warm_rows = engine.run_batch(jobs).rows()
        assert cold_rows[0]["cached_partition"] is False
        assert warm_rows[0]["cached_partition"] is True

    def test_describe_failures_only_mode(self):
        from repro.taskgraph import Task

        broken = TaskGraph("unestimable3")
        broken.add_task(Task("nocost"), env_input_words=1)
        engine = FlowEngine()
        good = self._job("matmul_pipeline")
        batch = engine.run_batch(
            [FlowJob(graph=broken, system=good.system, tag="broken"), good]
        )
        compact = batch.describe(failures_only=True)
        assert "1 failed" in compact
        assert "broken [estimate]" in compact
        # The happy job's tag is noise in the compact mode.
        assert "matmul_pipeline" not in compact

        healthy = engine.run_batch([good])
        assert healthy.describe(failures_only=True) == "flow batch of 1 jobs: all ok"


# ---------------------------------------------------------------------------
# Workload -> flow-job expansion
# ---------------------------------------------------------------------------

class TestWorkloadFlowJobs:
    def test_default_expansion_is_one_job_per_workload(self):
        jobs = workload_flow_jobs(names=["jpeg_dct", "matmul_pipeline"])
        assert [job.workload for job in jobs] == ["jpeg_dct", "matmul_pipeline"]

    def test_ct_sweep_expands_and_tags_jobs(self):
        jobs = workload_flow_jobs(
            names=["matmul_pipeline"], ct_values=[0.001, 0.005]
        )
        assert len(jobs) == 2
        assert jobs[0].tag.endswith("@ct=1ms")
        assert jobs[0].system.reconfiguration_time == pytest.approx(0.001)
        assert jobs[1].system.reconfiguration_time == pytest.approx(0.005)

    def test_variant_expansion_matches_the_sweep(self):
        workload = get_workload("matmul_pipeline")
        jobs = workload_flow_jobs(names=["matmul_pipeline"], variants=True)
        assert len(jobs) == len(workload.variants())
        assert jobs[1].graph.name == "matmul_pipeline-d4"

    def test_partitioner_override_applies_to_options(self):
        jobs = workload_flow_jobs(names=["matmul_pipeline"], partitioner="list")
        assert jobs[0].options.partitioner == "list"
        # The workload's own options are untouched.
        assert get_workload("matmul_pipeline").flow_options().partitioner == "ilp"

    def test_options_default_comes_from_the_workload(self):
        jobs = workload_flow_jobs(names=["fir_filterbank"])
        assert jobs[0].options.max_clock_period == pytest.approx(
            FlowOptions(max_clock_period=ns(80)).max_clock_period
        )
