"""Tests for the differential verification subsystem (repro.verify).

The heart of this file is the fault-injection suite: every oracle is handed
artifacts with one deliberately injected defect and must catch it — an
oracle that cannot fail is not an oracle.  Around that sit scenario-
generator determinism, harness/shrink behaviour, byte-identical verdict
stores, workload-catalog registration and the ``repro verify`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import SpecificationError, WorkloadError
from repro.arch import generic_system
from repro.fission.strategies import TimingBreakdown
from repro.memmap import build_memory_map
from repro.partition.result import TemporalPartitioning
from repro.runtime.engine import EngineConfig
from repro.synth.flow_engine import FlowEngine, FlowJob, FlowReport
from repro.synth.stages import graph_content_digest
from repro.verify import (
    ALL_FAMILIES,
    FAMILIES,
    HUGE_FAMILY,
    FeasibilityOracle,
    IlpNotWorseOracle,
    KPathsOracle,
    MemoryLegalityOracle,
    Oracle,
    PartitionValidityOracle,
    Scenario,
    ScenarioArtifacts,
    TimingModelOracle,
    VerdictStore,
    Verifier,
    VerifyConfig,
    WarmColdOracle,
    build_family_graph,
    design_fingerprint,
    generate_scenario,
    generate_scenarios,
    read_verdicts,
)

#: A scenario every partitioner solves comfortably: a 6-stage chain on a
#: 500-CLB board (tasks are 20-300 CLBs, so 2+ partitions are forced).
FEASIBLE = Scenario(
    family="chain",
    seed=1,
    task_count=6,
    clb_capacity=500,
    memory_words=4096,
    reconfiguration_time=0.005,
)


def build_artifacts(tmp_path, scenario=FEASIBLE, blocks=129) -> ScenarioArtifacts:
    """Cold ILP+list flows plus a warm ILP re-run, like the harness builds."""
    graph = scenario.build_graph()
    system = scenario.build_system()
    jobs = [
        FlowJob(graph=graph, system=system,
                options=scenario.flow_options(partitioner),
                tag=f"{scenario.name}@{partitioner}")
        for partitioner in ("ilp", "list")
    ]
    cold = FlowEngine(config=EngineConfig(cache_dir=tmp_path)).run_batch(jobs)
    warm = FlowEngine(config=EngineConfig(cache_dir=tmp_path)).run_batch(jobs)
    return ScenarioArtifacts(
        scenario=scenario,
        system=system,
        graph=graph,
        ilp_report=cold[0],
        list_report=cold[1],
        warm_ilp_report=warm[0],
        blocks=blocks,
    )


def failed_partition_report(job) -> FlowReport:
    """A structured partition-stage failure, as the flow engine reports it."""
    return FlowReport(
        job=job,
        failed_stage="partition",
        error="no feasible temporal partitioning exists",
        error_kind="PartitioningError",
    )


def singleton_partitioning(partitioning) -> TemporalPartitioning:
    """Every task in its own partition, in dependency order (valid but worse)."""
    graph = partitioning.graph
    order = graph.topological_order()
    return TemporalPartitioning(
        graph=graph,
        assignment={name: index + 1 for index, name in enumerate(order)},
        partition_count=len(order),
        reconfiguration_time=partitioning.reconfiguration_time,
        method="singleton",
    )


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------

class TestScenarioGeneration:
    def test_same_recipe_builds_the_same_graph(self):
        first = build_family_graph("layered", 77, 9)
        second = build_family_graph("layered", 77, 9)
        assert graph_content_digest(first) == graph_content_digest(second)

    def test_different_seeds_build_different_graphs(self):
        assert graph_content_digest(build_family_graph("layered", 1, 9)) != (
            graph_content_digest(build_family_graph("layered", 2, 9))
        )

    def test_generate_scenarios_is_deterministic(self):
        assert generate_scenarios(12, 5) == generate_scenarios(12, 5)
        assert generate_scenarios(12, 5) != generate_scenarios(12, 6)

    def test_round_robin_covers_every_family(self):
        families = {s.family for s in generate_scenarios(len(FAMILIES), 0)}
        assert families == set(FAMILIES)

    def test_every_generated_graph_validates(self):
        for scenario in generate_scenarios(30, 3):
            graph = scenario.build_graph()
            assert len(graph) == scenario.task_count
            assert all(task.has_cost for task in graph.tasks())

    def test_degenerate_family_is_never_connected(self):
        # Single nodes, disconnected chain pairs or edge-free graphs only.
        for seed in range(12):
            for count in (1, 2, 4, 6):
                graph = build_family_graph("degenerate", seed, count)
                assert graph.edge_count() <= max(0, count - 2)

    def test_degenerate_single_node(self):
        graph = build_family_graph("degenerate", 0, 1)
        assert len(graph) == 1 and graph.edge_count() == 0

    def test_chain_is_a_chain(self):
        graph = build_family_graph("chain", 9, 7)
        assert len(graph) == 7 and graph.edge_count() == 6

    def test_diamond_has_exact_task_counts_even_below_one_motif(self):
        for count in (1, 2, 3, 4, 5, 7, 10):
            graph = build_family_graph("diamond", 5, count)
            assert len(graph) == count

    def test_scenario_json_roundtrip(self):
        scenario = generate_scenario(4, 99)
        assert Scenario.from_json_dict(scenario.to_json_dict()) == scenario

    def test_with_task_count_keeps_the_system(self):
        smaller = FEASIBLE.with_task_count(2)
        assert smaller.task_count == 2
        assert smaller.clb_capacity == FEASIBLE.clb_capacity
        assert smaller.memory_words == FEASIBLE.memory_words

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError):
            build_family_graph("moebius", 0, 4)
        with pytest.raises(WorkloadError):
            generate_scenario(0, 0, families=("moebius",))
        with pytest.raises(WorkloadError):
            generate_scenario(0, 0, family="moebius")

    def test_zero_tasks_rejected(self):
        with pytest.raises(SpecificationError):
            build_family_graph("chain", 0, 0)


class TestWorkloadCatalog:
    def test_families_are_registered_workloads(self):
        from repro.workloads import workload_names

        names = workload_names()
        for family in FAMILIES:
            assert f"verify_{family}" in names

    def test_registry_builder_matches_the_family_builder(self):
        from repro.workloads import get_workload

        workload = get_workload("verify_chain")
        graph = workload.build_graph(seed=2)
        expected = build_family_graph(
            "chain", 2, workload.default_params["task_count"]
        )
        assert graph_content_digest(graph) == graph_content_digest(expected)

    def test_seed_sweep_expands_variants(self):
        from repro.workloads import get_workload

        variants = get_workload("verify_diamond").variants()
        assert len(variants) == 4
        assert {v.params["seed"] for v in variants} == {0, 1, 2, 3}

    def test_workloads_list_shows_the_families(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for family in FAMILIES:
            assert f"verify_{family}" in out


# ---------------------------------------------------------------------------
# The opt-in huge scale family
# ---------------------------------------------------------------------------

class TestHugeScaleFamily:
    def test_huge_family_is_opt_in(self):
        assert HUGE_FAMILY not in FAMILIES
        assert ALL_FAMILIES == FAMILIES + (HUGE_FAMILY,)
        # The default round-robin stream never draws it.
        assert all(s.family != HUGE_FAMILY for s in generate_scenarios(15, 0))

    def test_huge_scenarios_get_loose_budgets_and_a_multilevel_primary(self):
        for index in range(3):
            scenario = generate_scenario(index, 0, families=(HUGE_FAMILY,))
            assert scenario.family == HUGE_FAMILY
            assert 300 <= scenario.task_count <= 800
            assert scenario.memory_profile == "loose"
            assert scenario.primary_partitioner == "multilevel"
            assert scenario.implementations() == ("multilevel", "list")

    def test_small_families_keep_the_exact_primary(self):
        assert FEASIBLE.primary_partitioner == "ilp"
        assert FEASIBLE.implementations() == ("ilp", "list")

    def test_huge_graphs_build_deterministically(self):
        scenario = generate_scenario(0, 0, families=(HUGE_FAMILY,))
        graph = scenario.build_graph()
        assert len(graph) == scenario.task_count
        assert all(task.has_cost for task in graph.tasks())
        assert graph_content_digest(graph) == (
            graph_content_digest(scenario.build_graph())
        )

    def test_huge_family_shrinks_to_tiny_graphs(self):
        # The shrinker rebuilds failing scenarios at smaller node counts,
        # so the builder must stay well-defined down to one task.
        for count in (1, 2, 5):
            assert len(build_family_graph(HUGE_FAMILY, 3, count)) == count

    def test_verify_huge_workload_registered(self):
        from repro.workloads import get_workload

        workload = get_workload(f"verify_{HUGE_FAMILY}")
        assert "huge" in workload.tags
        assert workload.flow_options().partitioner == "multilevel"

    def test_huge_end_to_end_run_is_green_and_byte_stable(self, tmp_path):
        for name in ("a", "b"):
            report = Verifier(
                VerifyConfig(scenarios=1, seed=0, families=(HUGE_FAMILY,),
                             store_path=tmp_path / f"{name}.jsonl")
            ).run()
            assert report.ok
            record = report.records[0]
            assert record.scenario.family == HUGE_FAMILY
            skipped = [v for v in record.verdicts if v.status == "skip"]
            assert [v.oracle for v in skipped] == ["ilp-not-worse"]
        assert (tmp_path / "a.jsonl").read_bytes() == (
            (tmp_path / "b.jsonl").read_bytes()
        )


# ---------------------------------------------------------------------------
# Fault injection: every oracle must catch its deliberately broken input
# ---------------------------------------------------------------------------

class TestOracleFaultInjection:
    def test_clean_artifacts_pass_every_oracle(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        for oracle in (IlpNotWorseOracle(), FeasibilityOracle(),
                       TimingModelOracle(), WarmColdOracle(),
                       MemoryLegalityOracle(), PartitionValidityOracle(),
                       KPathsOracle()):
            verdict = oracle.check(artifacts)
            assert verdict.status == "pass", (oracle.name, verdict.detail)

    def test_ilp_not_worse_catches_a_beaten_ilp(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        design = artifacts.ilp_report.design
        worse = singleton_partitioning(design.partitioning)
        assert worse.total_latency > artifacts.list_report.design.partitioning.total_latency
        tampered = replace(
            artifacts.ilp_report,
            design=replace(design, partitioning=worse),
        )
        artifacts.ilp_report = tampered
        verdict = IlpNotWorseOracle().check(artifacts)
        assert verdict.failed
        assert "beaten by" in verdict.detail
        assert verdict.data["ilp_latency"] > verdict.data["list_latency"]

    def test_feasibility_catches_an_ilp_that_misses_a_feasible_instance(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        artifacts.ilp_report = failed_partition_report(artifacts.ilp_report.job)
        verdict = FeasibilityOracle().check(artifacts)
        assert verdict.failed
        assert "exact ILP reports the instance infeasible" in verdict.detail

    def test_feasibility_catches_an_ilp_solving_a_provably_infeasible_instance(
        self, tmp_path
    ):
        artifacts = build_artifacts(tmp_path)
        artifacts.list_report = failed_partition_report(artifacts.list_report.job)
        # Shrink the device below every task: infeasibility is now *certified*,
        # so an ILP claiming success is lying.
        artifacts.system = generic_system(clb_capacity=10, memory_words=4096)
        verdict = FeasibilityOracle().check(artifacts)
        assert verdict.failed
        assert "provably infeasible" in verdict.detail

    def test_feasibility_tolerates_a_heuristic_dead_end(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        artifacts.list_report = failed_partition_report(artifacts.list_report.job)
        verdict = FeasibilityOracle().check(artifacts)
        assert verdict.status == "pass"
        assert "dead-ended" in verdict.detail

    def test_timing_oracle_catches_a_tampered_timing_spec(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        design = artifacts.ilp_report.design
        spec = design.timing_spec
        doubled = replace(
            spec, partition_delays=[delay * 2 for delay in spec.partition_delays]
        )
        artifacts.ilp_report = replace(
            artifacts.ilp_report, design=replace(design, timing_spec=doubled)
        )
        verdict = TimingModelOracle().check(artifacts)
        assert verdict.failed
        assert "differs from a recomputation" in verdict.detail

    def test_timing_oracle_catches_a_drifting_analytic_model(self, tmp_path, monkeypatch):
        artifacts = build_artifacts(tmp_path)

        def drifting(strategy, spec, total, system, include_transfers=True):
            return TimingBreakdown(label="drifting", computation=1234.5)

        monkeypatch.setattr("repro.verify.oracles.execution_time", drifting)
        verdict = TimingModelOracle().check(artifacts)
        assert verdict.failed
        assert "disagrees with the event simulator" in verdict.detail

    def test_warm_cold_catches_a_diverged_warm_design(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        warm_design = artifacts.warm_ilp_report.design
        diverged = replace(
            warm_design,
            partitioning=singleton_partitioning(warm_design.partitioning),
        )
        artifacts.warm_ilp_report = replace(
            artifacts.warm_ilp_report, design=diverged
        )
        verdict = WarmColdOracle().check(artifacts)
        assert verdict.failed
        assert verdict.data["cold_fingerprint"] != verdict.data["warm_fingerprint"]

    def test_warm_cold_catches_a_success_mismatch(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        artifacts.warm_ilp_report = failed_partition_report(
            artifacts.warm_ilp_report.job
        )
        verdict = WarmColdOracle().check(artifacts)
        assert verdict.failed
        assert "disagree on success" in verdict.detail

    def test_memory_legality_catches_a_bank_overflow(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        # The design was sized for 4096 words; a 4-word bank cannot hold its
        # boundaries (nor k copies of the per-iteration block).
        artifacts.system = generic_system(clb_capacity=500, memory_words=4)
        verdict = MemoryLegalityOracle().check(artifacts)
        assert verdict.failed
        assert "exceeding" in verdict.detail

    def test_memory_legality_catches_an_unmapped_edge(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        design = artifacts.ilp_report.design
        # A memory map built for a *different* partitioning leaves this
        # design's cut edges unmapped (wrong blocks, wrong live sets).
        foreign = build_memory_map(singleton_partitioning(design.partitioning))
        artifacts.ilp_report = replace(
            artifacts.ilp_report, design=replace(design, memory_map=foreign)
        )
        verdict = MemoryLegalityOracle().check(artifacts)
        assert verdict.failed

    def test_partition_validity_catches_a_precedence_violation(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        design = artifacts.ilp_report.design
        graph = design.partitioning.graph
        order = graph.topological_order()
        backwards = TemporalPartitioning(
            graph=graph,
            assignment={
                name: len(order) - index for index, name in enumerate(order)
            },
            partition_count=len(order),
            reconfiguration_time=design.partitioning.reconfiguration_time,
            method="backwards",
        )
        artifacts.ilp_report = replace(
            artifacts.ilp_report, design=replace(design, partitioning=backwards)
        )
        verdict = PartitionValidityOracle().check(artifacts)
        assert verdict.failed
        assert "temporal order violated" in verdict.detail

    def test_ilp_not_worse_skips_for_a_heuristic_primary(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        artifacts.primary_partitioner = "multilevel"
        assert not artifacts.primary_is_exact
        verdict = IlpNotWorseOracle().check(artifacts)
        assert verdict.status == "skip"
        assert "no never-beaten optimality claim" in verdict.detail

    def test_feasibility_tolerates_a_heuristic_primary_dead_end(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        artifacts.primary_partitioner = "multilevel"
        artifacts.ilp_report = failed_partition_report(artifacts.ilp_report.job)
        verdict = FeasibilityOracle().check(artifacts)
        assert verdict.status == "pass"
        assert "dead-ended on an instance the list scheduler solved" in verdict.detail
        assert verdict.data["list_partitions"] >= 1

    def test_kpaths_oracle_catches_a_broken_top1(self, tmp_path, monkeypatch):
        from repro.taskgraph import k_longest_path_delays as real

        artifacts = build_artifacts(tmp_path)
        monkeypatch.setattr(
            "repro.verify.oracles.k_longest_path_delays",
            lambda graph, k: [delay * 2 for delay in real(graph, k)],
        )
        verdict = KPathsOracle().check(artifacts)
        assert verdict.failed
        assert "critical-path DP" in verdict.detail

    def test_kpaths_oracle_catches_a_drifting_tail(self, tmp_path, monkeypatch):
        from repro.taskgraph import count_root_to_leaf_paths
        from repro.taskgraph import k_longest_path_delays as real

        artifacts = build_artifacts(tmp_path)
        # The feasible chain has a single path; swap in a reconvergent graph
        # so the multiset comparison has a tail to drift.
        artifacts.graph = build_family_graph("layered", 0, 10)
        assert count_root_to_leaf_paths(artifacts.graph) > 1

        def drifting(graph, k):
            delays = real(graph, k)
            # Top-1 intact (passes the critical-path cross-check), the rest
            # off by one ulp-scale factor — exactly the bug class the
            # bitwise multiset comparison exists to catch.
            return delays[:1] + [delay * (1 + 1e-12) for delay in delays[1:]]

        monkeypatch.setattr("repro.verify.oracles.k_longest_path_delays", drifting)
        verdict = KPathsOracle().check(artifacts)
        assert verdict.failed
        assert "diverge from enumeration" in verdict.detail
        assert verdict.data["rank"] >= 1

    def test_kpaths_oracle_skips_enumeration_past_the_budget(self, tmp_path, monkeypatch):
        artifacts = build_artifacts(tmp_path)
        monkeypatch.setattr("repro.verify.oracles.KPATHS_ENUM_LIMIT", 0)
        verdict = KPathsOracle().check(artifacts)
        assert verdict.status == "pass"
        assert "enumeration budget" in verdict.detail
        assert verdict.data["path_count"] >= 1

    def test_design_fingerprint_is_content_sensitive(self, tmp_path):
        artifacts = build_artifacts(tmp_path)
        design = artifacts.ilp_report.design
        assert design_fingerprint(design) == design_fingerprint(design)
        tampered = replace(
            design, partitioning=singleton_partitioning(design.partitioning)
        )
        assert design_fingerprint(design) != design_fingerprint(tampered)
        assert design_fingerprint(None) == ""


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

class _FailsOnBigGraphs(Oracle):
    """A synthetic oracle failing whenever the graph has >= 4 tasks."""

    name = "big-graph"

    def check(self, artifacts):
        from repro.verify.oracles import FAIL, PASS, OracleVerdict

        count = len(artifacts.ilp_report.job.graph)
        status = FAIL if count >= 4 else PASS
        return OracleVerdict(
            oracle=self.name, status=status, detail=f"{count} tasks"
        )


class TestVerifier:
    def test_small_run_passes_every_oracle(self):
        report = Verifier(VerifyConfig(scenarios=6, seed=0)).run()
        assert report.ok
        assert len(report.records) == 6
        assert report.scenarios_per_second > 0
        counts = report.oracle_counts()
        assert set(counts) == {o.name for o in Verifier(
            VerifyConfig(scenarios=1)).oracles}
        for record in report.records:
            assert record.fingerprint == record.scenario.fingerprint()

    def test_verdict_store_is_byte_deterministic(self, tmp_path):
        for name in ("a", "b"):
            report = Verifier(
                VerifyConfig(scenarios=5, seed=11, store_path=tmp_path / f"{name}.jsonl")
            ).run()
            assert report.ok
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()

    def test_different_seeds_write_different_stores(self, tmp_path):
        for seed in (0, 1):
            Verifier(
                VerifyConfig(scenarios=3, seed=seed,
                             store_path=tmp_path / f"s{seed}.jsonl")
            ).run()
        assert (tmp_path / "s0.jsonl").read_bytes() != (tmp_path / "s1.jsonl").read_bytes()

    def test_store_records_are_readable_counterexample_recipes(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        Verifier(VerifyConfig(scenarios=3, seed=0, store_path=path)).run()
        records = list(read_verdicts(path))
        assert records[0]["kind"] == "meta"
        assert records[0]["scenarios"] == 3
        scenario_records = [r for r in records if r.get("kind") == "scenario"]
        assert len(scenario_records) == 3
        rebuilt = Scenario.from_json_dict(scenario_records[0]["scenario"])
        rebuilt.build_graph().validate()

    def test_read_verdicts_rejects_corrupt_and_mismatched_stores(self, tmp_path):
        from repro.errors import ReproError

        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"kind":"meta"\nnot json\n', encoding="utf-8")
        with pytest.raises(ReproError, match="corrupt verdict store"):
            list(read_verdicts(corrupt))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"kind":"meta","version":999}\n', encoding="utf-8")
        with pytest.raises(ReproError, match="schema version"):
            list(read_verdicts(wrong))
        with pytest.raises(ReproError, match="cannot read"):
            list(read_verdicts(tmp_path / "missing.jsonl"))

    def test_failing_scenarios_are_shrunk_to_smaller_node_counts(self):
        # Find a chain scenario with a comfortably shrinkable task count.
        seed = next(
            s for s in range(50)
            if generate_scenario(0, s, families=("chain",)).task_count >= 6
        )
        config = VerifyConfig(scenarios=1, seed=seed, families=("chain",))
        report = Verifier(config, oracles=[_FailsOnBigGraphs()]).run()
        record = report.records[0]
        assert not record.ok
        assert record.failed_oracles() == ["big-graph"]
        assert record.shrunk is not None
        # The ladder tries 1, 2, 3, 4, ...; the oracle fails from 4 tasks on.
        assert record.shrunk["task_count"] == 4
        assert record.shrunk["oracles"] == ["big-graph"]
        shrunk = Scenario.from_json_dict(record.shrunk["scenario"])
        assert shrunk.task_count == 4
        assert shrunk.clb_capacity == record.scenario.clb_capacity

    def test_shrink_can_be_disabled(self):
        config = VerifyConfig(
            scenarios=1, seed=3, families=("chain",), shrink=False
        )
        report = Verifier(config, oracles=[_FailsOnBigGraphs()]).run()
        for record in report.records:
            assert record.shrunk is None

    def test_config_validation(self):
        with pytest.raises(SpecificationError, match="at least 1"):
            VerifyConfig(scenarios=0)
        with pytest.raises(WorkloadError, match="unknown scenario family"):
            VerifyConfig(scenarios=1, families=("nope",))
        with pytest.raises(SpecificationError):
            VerifyConfig(scenarios=1, families=())
        with pytest.raises(SpecificationError):
            VerifyConfig(scenarios=1, workers=-1)
        with pytest.raises(SpecificationError):
            VerifyConfig(scenarios=1, blocks=0)
        with pytest.raises(SpecificationError):
            Verifier(VerifyConfig(scenarios=1), scenarios=2)

    def test_verdict_store_memory_only(self):
        with VerdictStore() as store:
            assert len(store) == 0
            assert store.replay() == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestVerifyCli:
    def test_verify_smoke_table(self, capsys):
        assert main(["verify", "--scenarios", "5", "--seed", "0"]) == 0
        captured = capsys.readouterr()
        assert "Differential verification" in captured.out
        assert "all oracles passed" in captured.err

    def test_verify_json_rows(self, capsys):
        assert main([
            "verify", "--scenarios", "5", "--seed", "0", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 5
        assert all(row["status"] == "ok" for row in rows)
        assert {row["family"] for row in rows} == set(FAMILIES)

    def test_verify_store_is_deterministic_across_invocations(self, tmp_path, capsys):
        paths = [tmp_path / "one.jsonl", tmp_path / "two.jsonl"]
        for path in paths:
            assert main([
                "verify", "--scenarios", "4", "--seed", "7",
                "--store", str(path), "--format", "csv",
            ]) == 0
            capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_verify_families_filter(self, capsys):
        assert main([
            "verify", "--scenarios", "3", "--families", "chain,degenerate",
            "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["family"] for row in rows} <= {"chain", "degenerate"}

    def test_flow_runs_a_verify_workload(self, capsys):
        assert main(["flow", "--workload", "verify_chain"]) == 0
        assert "host sequencing code" in capsys.readouterr().out
