"""Tests for memory mapping and address generation (repro.memmap)."""

import pytest

from repro.errors import MemoryMappingError
from repro.memmap import (
    AddressGenerator,
    MemoryBlock,
    MemorySegment,
    SegmentKind,
    addressing_tradeoff,
    boundary_words_from_map,
    build_memory_map,
)
from repro.partition import TemporalPartitioning
from repro.taskgraph import Task, TaskGraph, clb_cost
from repro.units import ns


def make_block(sizes=(3, 5, 8)):
    block = MemoryBlock(partition_index=1)
    for index, words in enumerate(sizes):
        block.add_segment(
            MemorySegment(name=f"M{index + 1}", words=words, kind=SegmentKind.CROSS_INPUT)
        )
    return block


class TestMemoryBlock:
    def test_offsets_are_cumulative(self):
        block = make_block((3, 5, 8))
        assert block.offset_of("M1") == 0
        assert block.offset_of("M2") == 3
        assert block.offset_of("M3") == 8
        assert block.natural_words == 16

    def test_duplicate_segment_rejected(self):
        block = make_block()
        with pytest.raises(MemoryMappingError):
            block.add_segment(MemorySegment("M1", 1, SegmentKind.ENV_INPUT))

    def test_power_of_two_rounding(self):
        block = make_block((3, 5, 9))  # 17 words -> 32
        block.round_to_power_of_two()
        assert block.allocated_words == 32
        assert block.wasted_words == 15
        block.clear_rounding()
        assert block.allocated_words == 17

    def test_rounding_idempotent_for_powers_of_two(self):
        block = make_block((16, 16))
        block.round_to_power_of_two()
        assert block.allocated_words == 32
        assert block.wasted_words == 0

    def test_unknown_segment(self):
        with pytest.raises(MemoryMappingError):
            make_block().offset_of("nope")

    def test_input_output_words(self):
        block = MemoryBlock(partition_index=2)
        block.add_segment(MemorySegment("in", 4, SegmentKind.ENV_INPUT))
        block.add_segment(MemorySegment("xin", 6, SegmentKind.CROSS_INPUT))
        block.add_segment(MemorySegment("out", 2, SegmentKind.ENV_OUTPUT))
        block.add_segment(MemorySegment("xout", 1, SegmentKind.CROSS_OUTPUT))
        block.add_segment(MemorySegment("live", 9, SegmentKind.PASSTHROUGH))
        assert block.input_words() == 10
        assert block.output_words() == 3
        assert block.natural_words == 22


class TestMemoryMapDct:
    def test_dct_block_sizes(self, case_study_ilp):
        memory_map = case_study_ilp.memory_map
        # Partition 1: 16 env inputs + 16 cross outputs = 32 words (the paper's figure).
        assert memory_map.per_iteration_words(1) == 32
        # The limiting block is partition 1's.
        assert memory_map.max_per_iteration_words() == 32

    def test_dct_partition1_segment_kinds(self, case_study_ilp):
        block = case_study_ilp.memory_map.block(1)
        env_in = sum(s.words for s in block.segments_of_kind(SegmentKind.ENV_INPUT))
        cross_out = sum(s.words for s in block.segments_of_kind(SegmentKind.CROSS_OUTPUT))
        assert env_in == 16
        assert cross_out == 16

    def test_dct_later_partitions_io(self, case_study_ilp):
        memory_map = case_study_ilp.memory_map
        for index in (2, 3):
            block = memory_map.block(index)
            cross_in = sum(s.words for s in block.segments_of_kind(SegmentKind.CROSS_INPUT))
            env_out = sum(s.words for s in block.segments_of_kind(SegmentKind.ENV_OUTPUT))
            assert cross_in == 8
            assert env_out == 8

    def test_boundary_words_cross_check(self, case_study_ilp):
        memory_map = case_study_ilp.memory_map
        partitioning = case_study_ilp.partitioning
        for boundary in range(1, partitioning.partition_count):
            assert boundary_words_from_map(memory_map, boundary) == partitioning.boundary_words(boundary)

    def test_rounded_map_never_smaller(self, case_study_ilp):
        rounded = build_memory_map(case_study_ilp.partitioning, round_to_power_of_two=True)
        plain = case_study_ilp.memory_map
        for index in plain.partition_indices:
            assert rounded.per_iteration_words(index) >= plain.per_iteration_words(index)

    def test_rounding_wastage_accounting(self, case_study_ilp):
        # P1 (32 words) and P3 (16 words) are already powers of two; only the
        # middle partition's 24-word block (8 of which are pass-through data)
        # is rounded up, to 32 words.
        rounded = build_memory_map(case_study_ilp.partitioning, round_to_power_of_two=True)
        plain = case_study_ilp.memory_map
        expected_waste = sum(
            rounded.per_iteration_words(i) - plain.per_iteration_words(i)
            for i in plain.partition_indices
        )
        assert rounded.total_wasted_words() == expected_waste
        assert rounded.per_iteration_words(1) == 32


class TestMemoryMapPassthrough:
    def test_passthrough_segment_created(self):
        graph = TaskGraph("pass")
        graph.add_task(Task("a", cost=clb_cost(10, ns(1))), env_input_words=1)
        graph.add_task(Task("b", cost=clb_cost(10, ns(1))))
        graph.add_task(Task("c", cost=clb_cost(10, ns(1))), env_output_words=1)
        graph.add_edge("a", "b", words=2)
        graph.add_edge("a", "c", words=7)   # skips partition 2
        graph.add_edge("b", "c", words=3)
        partitioning = TemporalPartitioning(
            graph=graph,
            assignment={"a": 1, "b": 2, "c": 3},
            partition_count=3,
            reconfiguration_time=0.0,
        )
        memory_map = build_memory_map(partitioning)
        block2 = memory_map.block(2)
        passthrough = block2.segments_of_kind(SegmentKind.PASSTHROUGH)
        assert len(passthrough) == 1 and passthrough[0].words == 7
        assert boundary_words_from_map(memory_map, 1) == 9
        assert boundary_words_from_map(memory_map, 2) == 10


class TestAddressGenerator:
    def test_multiplier_addresses(self):
        block = make_block((3, 5, 8))
        generator = AddressGenerator(block, base_address=100, scheme="multiplier")
        assert generator.address(0, "M1", 0) == 100
        assert generator.address(0, "M2", 4) == 100 + 3 + 4
        assert generator.address(2, "M3", 1) == 100 + 2 * 16 + 8 + 1

    def test_concatenation_requires_power_of_two(self):
        block = make_block((3, 5, 9))
        with pytest.raises(MemoryMappingError):
            AddressGenerator(block, scheme="concatenation")

    def test_concatenation_matches_multiplier_on_rounded_blocks(self):
        block = make_block((3, 5, 9))
        block.round_to_power_of_two()
        concat = AddressGenerator(block, scheme="concatenation")
        mult = AddressGenerator(block, scheme="multiplier")
        for iteration in range(5):
            for segment in ("M1", "M2", "M3"):
                for location in range(block.segment(segment).words):
                    assert concat.address(iteration, segment, location) == mult.address(
                        iteration, segment, location
                    )

    def test_addresses_unique_across_iterations(self):
        block = make_block((4, 4))
        block.round_to_power_of_two()
        generator = AddressGenerator(block, scheme="concatenation")
        seen = set()
        for iteration in range(8):
            for segment in ("M1", "M2"):
                for address in generator.iter_segment_addresses(iteration, segment):
                    assert address not in seen
                    seen.add(address)

    def test_out_of_range_location_rejected(self):
        block = make_block((4,))
        generator = AddressGenerator(block, scheme="multiplier")
        with pytest.raises(MemoryMappingError):
            generator.address(0, "M1", 4)

    def test_negative_iteration_rejected(self):
        generator = AddressGenerator(make_block(), scheme="multiplier")
        with pytest.raises(MemoryMappingError):
            generator.address(-1, "M1", 0)

    def test_footprint_and_range(self):
        block = make_block((8, 8))
        generator = AddressGenerator(block, base_address=64, scheme="multiplier")
        assert generator.footprint_words(4) == 64
        assert generator.address_range(4) == (64, 128)

    def test_unknown_scheme(self):
        with pytest.raises(MemoryMappingError):
            AddressGenerator(make_block(), scheme="hash")

    def test_hardware_cost_concat_cheaper(self):
        block = make_block((3, 5, 8))
        trade = addressing_tradeoff(block)
        assert trade["concatenation_area_clbs"] < trade["multiplier_area_clbs"]
        assert trade["concatenation_delay"] < trade["multiplier_delay"]
        assert trade["wasted_words"] == trade["rounded_words"] - trade["natural_words"]

    def test_tradeoff_on_dct_partition1(self, case_study_ilp):
        block = case_study_ilp.memory_map.block(1)
        trade = addressing_tradeoff(block)
        # 32 words is already a power of two: no wastage at all for partition 1.
        assert trade["wasted_words"] == 0
