"""Tests for behaviour-level task graphs (repro.taskgraph)."""

import pytest

from repro.arch import clbs
from repro.errors import CycleError, GraphError, SpecificationError, UnknownTaskError
from repro.taskgraph import (
    Task,
    TaskCost,
    TaskGraph,
    asap_levels,
    clb_cost,
    count_root_to_leaf_paths,
    critical_path,
    downstream_tasks,
    fork_join,
    from_json,
    image_pipeline_task_graph,
    independent_task_pairs,
    linear_pipeline,
    partition_lower_bound,
    path_delay,
    random_dsp_task_graph,
    root_to_leaf_paths,
    tasks_by_level,
    to_json,
    transitive_reduction,
    upstream_tasks,
)
from repro.units import ns


class TestTaskCost:
    def test_clb_cost(self):
        cost = clb_cost(70, ns(3400))
        assert cost.clbs == 70
        assert cost.delay == pytest.approx(ns(3400))

    def test_cycles_clock_consistency_enforced(self):
        with pytest.raises(SpecificationError):
            TaskCost(resources=clbs(10), delay=ns(100), cycles=3, clock_period=ns(50))

    def test_cycles_clock_consistent_accepted(self):
        cost = clb_cost(10, ns(150), cycles=3, clock_period=ns(50))
        assert cost.cycles == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(SpecificationError):
            clb_cost(10, -1.0)


class TestTask:
    def test_unestimated_task_raises_on_cost_access(self):
        task = Task("t")
        assert not task.has_cost
        with pytest.raises(SpecificationError):
            _ = task.delay

    def test_with_cost(self):
        task = Task("t").with_cost(clb_cost(50, ns(100)))
        assert task.clbs == 50

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            Task("")

    def test_describe(self):
        assert "unestimated" in Task("t").describe()
        assert "70 CLBs" in Task("t", cost=clb_cost(70, ns(10))).describe()


class TestTaskGraph:
    def test_add_edge_and_words(self, two_task_graph):
        assert two_task_graph.edge_words("a", "b") == 4

    def test_env_io(self, two_task_graph):
        assert two_task_graph.env_input_words("a") == 4
        assert two_task_graph.env_output_words("b") == 4
        assert two_task_graph.total_env_input_words() == 4

    def test_set_env_io(self, two_task_graph):
        two_task_graph.set_env_io("a", env_input_words=10)
        assert two_task_graph.env_input_words("a") == 10

    def test_duplicate_task_rejected(self, two_task_graph):
        with pytest.raises(GraphError):
            two_task_graph.add_task(Task("a", cost=clb_cost(1, 0)))

    def test_duplicate_edge_rejected(self, two_task_graph):
        with pytest.raises(GraphError):
            two_task_graph.add_edge("a", "b")

    def test_unknown_task_rejected(self, two_task_graph):
        with pytest.raises(UnknownTaskError):
            two_task_graph.edge_words("a", "zzz")

    def test_cycle_rejected(self, two_task_graph):
        with pytest.raises(CycleError):
            two_task_graph.add_edge("b", "a")

    def test_roots_and_leaves(self, two_task_graph):
        assert two_task_graph.roots() == ["a"]
        assert two_task_graph.leaves() == ["b"]

    def test_total_resources_and_delay(self, two_task_graph):
        assert two_task_graph.total_resources()["clb"] == 200
        assert two_task_graph.total_delay() == pytest.approx(ns(300))

    def test_set_cost(self, two_task_graph):
        two_task_graph.set_cost("a", clb_cost(999, ns(1)))
        assert two_task_graph.task("a").clbs == 999

    def test_all_estimated(self, two_task_graph):
        assert two_task_graph.all_estimated()
        two_task_graph.add_task(Task("c"))
        assert not two_task_graph.all_estimated()

    def test_subgraph_copy(self, two_task_graph):
        sub = two_task_graph.subgraph_copy(["a"])
        assert len(sub) == 1 and sub.edge_count() == 0

    def test_validate_empty_graph(self):
        with pytest.raises(GraphError):
            TaskGraph("empty").validate()

    def test_negative_edge_words_rejected(self, two_task_graph):
        two_task_graph.add_task(Task("c", cost=clb_cost(1, 0)))
        with pytest.raises(GraphError):
            two_task_graph.add_edge("a", "c", words=-1)


class TestBulkEdgeInsertion:
    @staticmethod
    def _nodes(count):
        graph = TaskGraph("bulk")
        for index in range(count):
            graph.add_task(Task(f"t{index}", cost=clb_cost(10, ns(100))))
        return graph

    def test_matches_serial_add_edge(self):
        edges = [("t0", "t1", 4), ("t1", "t2", 8), ("t0", "t3", 2), ("t3", "t2", 6)]
        bulk = self._nodes(4)
        bulk.add_edges(edges)
        serial = self._nodes(4)
        for producer, consumer, words in edges:
            serial.add_edge(producer, consumer, words)
        assert sorted(bulk.edges()) == sorted(serial.edges())
        for producer, consumer, words in edges:
            assert bulk.edge_words(producer, consumer) == words
        bulk.validate()

    @pytest.mark.parametrize(
        "bad_edges, error",
        [
            ([("t0", "t1", 4), ("t1", "t0", 4)], CycleError),
            ([("t0", "t1", 4), ("t0", "t1", 4)], GraphError),
            ([("t0", "t1", 4), ("t1", "t1", 4)], GraphError),
            ([("t0", "t1", 4), ("t1", "t2", -1)], GraphError),
            ([("t0", "t1", 4), ("t1", "zzz", 4)], UnknownTaskError),
        ],
        ids=["cycle", "duplicate", "self-edge", "negative-words", "unknown-task"],
    )
    def test_any_failure_rolls_back_every_edge(self, bad_edges, error):
        graph = self._nodes(3)
        with pytest.raises(error):
            graph.add_edges(bad_edges)
        # The good prefix must not survive the failed bulk call.
        assert graph.edge_count() == 0

    def test_rollback_preserves_preexisting_edges(self):
        graph = self._nodes(3)
        graph.add_edge("t0", "t1", 4)
        with pytest.raises(CycleError):
            graph.add_edges([("t1", "t2", 4), ("t2", "t0", 4)])
        assert sorted(graph.edges()) == [("t0", "t1")]


class TestAnalysis:
    def test_root_to_leaf_paths_pipeline(self):
        graph = linear_pipeline([10, 10, 10], [ns(1), ns(2), ns(3)])
        paths = root_to_leaf_paths(graph)
        assert paths == [("stage0", "stage1", "stage2")]

    def test_root_to_leaf_paths_fork_join(self):
        graph = fork_join(branch_count=3)
        assert len(root_to_leaf_paths(graph)) == 3

    def test_isolated_task_is_its_own_path(self):
        graph = TaskGraph("iso")
        graph.add_task(Task("only", cost=clb_cost(1, ns(1))))
        assert root_to_leaf_paths(graph) == [("only",)]

    def test_path_count_matches_enumeration(self):
        graph = random_dsp_task_graph(task_count=15, seed=3)
        assert count_root_to_leaf_paths(graph) == len(root_to_leaf_paths(graph))

    def test_path_limit_enforced(self):
        graph = fork_join(branch_count=5)
        with pytest.raises(GraphError):
            root_to_leaf_paths(graph, limit=2)

    def test_path_delay(self):
        graph = linear_pipeline([10, 10], [ns(100), ns(200)])
        assert path_delay(graph, ["stage0", "stage1"]) == pytest.approx(ns(300))

    def test_critical_path(self, figure4_graph):
        path, delay = critical_path(figure4_graph)
        assert delay == pytest.approx(ns(100 + 300 + 100 + 200))
        assert path[0] == "a" and path[-1] == "f"

    def test_asap_levels(self, figure4_graph):
        levels = asap_levels(figure4_graph)
        assert levels["a"] == 0 and levels["e"] == 2 and levels["f"] == 3

    def test_tasks_by_level_partition_everything(self):
        graph = random_dsp_task_graph(task_count=12, seed=1)
        grouped = tasks_by_level(graph)
        flattened = [name for level in grouped for name in level]
        assert sorted(flattened) == sorted(graph.task_names())

    def test_partition_lower_bound(self, dct_graph):
        assert partition_lower_bound(dct_graph, clbs(1600)) == 3

    def test_partition_lower_bound_oversized_task(self):
        graph = TaskGraph("big")
        graph.add_task(Task("huge", cost=clb_cost(5000, ns(1))))
        with pytest.raises(GraphError):
            partition_lower_bound(graph, clbs(1600))

    def test_upstream_downstream(self, figure4_graph):
        assert "a" in upstream_tasks(figure4_graph, "f")
        assert "f" in downstream_tasks(figure4_graph, "a")
        assert "d" not in downstream_tasks(figure4_graph, "a")

    def test_independent_pairs(self, figure4_graph):
        pairs = independent_task_pairs(figure4_graph)
        assert ("a", "d") in pairs or ("d", "a") in pairs
        assert ("a", "b") not in pairs and ("b", "a") not in pairs

    def test_transitive_reduction_refuses_to_drop_data(self):
        graph = TaskGraph("tr")
        for name in ("a", "b", "c"):
            graph.add_task(Task(name, cost=clb_cost(1, ns(1))))
        graph.add_edge("a", "b", words=1)
        graph.add_edge("b", "c", words=1)
        graph.add_edge("a", "c", words=1)  # redundant but carries data
        with pytest.raises(GraphError):
            transitive_reduction(graph)

    def test_transitive_reduction_drops_zero_word_edges(self):
        graph = TaskGraph("tr")
        for name in ("a", "b", "c"):
            graph.add_task(Task(name, cost=clb_cost(1, ns(1))))
        graph.add_edge("a", "b", words=1)
        graph.add_edge("b", "c", words=1)
        graph.add_edge("a", "c", words=0)
        reduced = transitive_reduction(graph)
        assert not reduced.has_edge("a", "c")


class TestBuildersAndSerialisation:
    def test_linear_pipeline_length_mismatch(self):
        with pytest.raises(SpecificationError):
            linear_pipeline([10], [ns(1), ns(2)])

    def test_figure4_partition_metadata(self, figure4_graph):
        assert figure4_graph.task("a").metadata["figure4_partition"] == 1
        assert figure4_graph.task("f").metadata["figure4_partition"] == 2

    def test_random_graph_reproducible(self):
        first = random_dsp_task_graph(task_count=20, seed=7)
        second = random_dsp_task_graph(task_count=20, seed=7)
        assert first.task_names() == second.task_names()
        assert first.edges() == second.edges()
        assert [t.clbs for t in first.tasks()] == [t.clbs for t in second.tasks()]

    def test_random_graph_different_seeds_differ(self):
        first = random_dsp_task_graph(task_count=20, seed=1)
        second = random_dsp_task_graph(task_count=20, seed=2)
        assert first.edges() != second.edges() or [t.clbs for t in first.tasks()] != [
            t.clbs for t in second.tasks()
        ]

    def test_random_graph_is_dag_and_estimated(self):
        graph = random_dsp_task_graph(task_count=30, seed=11)
        graph.validate()
        assert graph.all_estimated()

    def test_image_pipeline_shape(self):
        graph = image_pipeline_task_graph()
        assert graph.roots() == ["window"]
        assert graph.leaves() == ["threshold"]

    def test_json_roundtrip(self, dct_graph):
        text = to_json(dct_graph)
        restored = from_json(text)
        assert restored.task_names() == dct_graph.task_names()
        assert restored.edges() == dct_graph.edges()
        for name in dct_graph.task_names():
            assert restored.task(name).clbs == dct_graph.task(name).clbs
            assert restored.task(name).delay == pytest.approx(dct_graph.task(name).delay)
            assert restored.env_input_words(name) == dct_graph.env_input_words(name)

    def test_json_roundtrip_unestimated(self):
        graph = TaskGraph("raw")
        graph.add_task(Task("a"))
        restored = from_json(to_json(graph))
        assert not restored.task("a").has_cost

    def test_json_rejects_wrong_format(self):
        with pytest.raises(SpecificationError):
            from_json('{"format": "something-else", "version": 1}')

    def test_save_and_load(self, tmp_path, two_task_graph):
        from repro.taskgraph import load, save

        path = tmp_path / "graph.json"
        save(two_task_graph, path)
        assert load(path).task_names() == two_task_graph.task_names()
