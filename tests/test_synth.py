"""Tests for the end-to-end synthesis flow and design artefacts (repro.synth)."""

import pytest

from repro.arch import xc4044
from repro.errors import SynthesisError
from repro.fission import SequencingStrategy
from repro.hls import emit_vhdl_like
from repro.jpeg import build_dct_task_graph
from repro.synth import (
    DesignFlow,
    FlowOptions,
    StaticDesign,
    static_design_from_estimator,
    static_design_from_parameters,
)
from repro.taskgraph import Task, TaskGraph, image_pipeline_task_graph
from repro.units import ns


class TestStaticDesign:
    def test_paper_static_design(self):
        design = static_design_from_parameters(
            "dct-static", clbs=1600, cycles_per_block=160, clock_period=ns(100),
            env_input_words=16, env_output_words=16,
        )
        assert design.block_delay == pytest.approx(ns(16000))
        assert design.fits(xc4044())
        spec = design.timing_spec()
        assert spec.env_input_words == 16

    def test_static_design_validation(self):
        with pytest.raises(SynthesisError):
            StaticDesign("bad", clbs=10, cycles_per_block=0, clock_period=ns(10),
                         env_input_words=1, env_output_words=1)

    def test_static_design_from_estimator_shares_units(self):
        graph = build_dct_task_graph(attach_dfgs=True)
        design = static_design_from_estimator(graph, xc4044(), max_clock_period=ns(100))
        # Unit sharing across the 32 tasks keeps the static design well under
        # the sum of per-task areas (4000 CLBs).
        assert design.clbs < 4000
        assert design.cycles_per_block > 0
        assert design.env_input_words == 16

    def test_static_design_from_estimator_needs_dfgs(self):
        graph = build_dct_task_graph(attach_dfgs=False)
        with pytest.raises(SynthesisError):
            static_design_from_estimator(graph, xc4044(), max_clock_period=ns(100))


class TestDesignFlow:
    def test_flow_on_dct_with_paper_costs(self, paper_system):
        flow = DesignFlow(paper_system)
        design = flow.build(build_dct_task_graph())
        assert design.partition_count == 3
        assert design.computations_per_run == 2048
        assert design.block_delay == pytest.approx(ns(8440))
        assert design.total_configuration_clbs() == 4000
        assert "for" in design.host_code_for(SequencingStrategy.FDH)
        assert "for" in design.host_code_for(SequencingStrategy.IDH)

    def test_staged_flow_matches_build(self, paper_system):
        """Driving the stage methods by hand equals the one-call build."""
        flow = DesignFlow(paper_system)
        graph = flow.estimate(build_dct_task_graph())
        partitioning = flow.partition(graph)
        memory_map = flow.map_memory(partitioning)
        fission = flow.analyse(partitioning, memory_map)
        timing = flow.timing(partitioning, fission, memory_map)
        design = flow.assemble(
            graph, partitioning,
            memory_map=memory_map, fission=fission, timing=timing,
        )
        # Precomputed artefacts are adopted, not recomputed.
        assert design.memory_map is memory_map
        assert design.fission is fission
        assert design.timing_spec is timing
        built = flow.build(build_dct_task_graph())
        assert design.partition_count == built.partition_count
        assert design.computations_per_run == built.computations_per_run
        assert design.block_delay == pytest.approx(built.block_delay)
        assert "for" in design.host_code_for(SequencingStrategy.IDH)

    def test_flow_with_list_partitioner(self, paper_system):
        flow = DesignFlow(paper_system, FlowOptions(partitioner="list"))
        design = flow.build(build_dct_task_graph())
        assert design.partition_count == 3
        # The list baseline's latency is the paper's 10 960 ns figure.
        assert design.block_delay == pytest.approx(ns(10960))

    def test_flow_with_level_partitioner(self, paper_system):
        flow = DesignFlow(paper_system, FlowOptions(partitioner="level"))
        design = flow.build(build_dct_task_graph())
        assert design.partition_count >= 3

    def test_flow_estimates_unpriced_graph(self, paper_system):
        graph = build_dct_task_graph(attach_dfgs=True)
        for name in graph.task_names():
            task = graph.task(name)
            task.cost = None  # strip the paper costs; the flow must re-estimate
        flow = DesignFlow(paper_system)
        design = flow.build(graph)
        assert design.partition_count >= 2
        assert design.computations_per_run >= 1

    def test_flow_rejects_unknown_partitioner(self):
        with pytest.raises(SynthesisError):
            FlowOptions(partitioner="simulated-annealing")

    def test_flow_on_image_pipeline(self):
        from repro.arch import generic_system
        from repro.units import ms

        system = generic_system(clb_capacity=600, memory_words=4096, reconfiguration_time=ms(10))
        design = DesignFlow(system).build(image_pipeline_task_graph())
        assert design.partition_count >= 2
        assert design.fission.computations_per_run >= 1

    def test_flow_generates_rtl_when_requested(self, paper_system):
        graph = build_dct_task_graph(attach_dfgs=True)
        flow = DesignFlow(paper_system, FlowOptions(generate_rtl=True))
        design = flow.build(graph)
        assert len(design.configurations) == design.partition_count
        first = design.configuration(1)
        assert first.iteration_bound == design.computations_per_run
        text = emit_vhdl_like(first)
        assert "entity" in text and "iteration_bound" in text

    def test_flow_rtl_requires_dfgs(self, paper_system):
        flow = DesignFlow(paper_system, FlowOptions(generate_rtl=True))
        with pytest.raises(SynthesisError):
            flow.build(build_dct_task_graph(attach_dfgs=False))

    def test_rounded_memory_blocks_option(self, paper_system):
        flow = DesignFlow(paper_system, FlowOptions(round_memory_blocks=True))
        design = flow.build(build_dct_task_graph())
        # Rounding P2's 24-word block to 32 does not change k (P1's 32 dominates).
        assert design.computations_per_run == 2048
        assert design.memory_map.rounded

    def test_design_describe(self, paper_system):
        design = DesignFlow(paper_system).build(build_dct_task_graph())
        text = design.describe()
        assert "3 configurations" in text and "k=2048" in text

    def test_configuration_index_bounds(self, paper_system):
        design = DesignFlow(paper_system).build(build_dct_task_graph())
        with pytest.raises(SynthesisError):
            design.configuration(1)  # no RTL generated in this flow run
