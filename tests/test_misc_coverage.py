"""Targeted tests for less-travelled paths: error handling, edge cases, reports."""

import pytest

from repro import errors
from repro.arch import xc4044
from repro.dfg import vector_product_dfg
from repro.errors import (
    FissionError,
    IlpError,
    MemoryMappingError,
    PartitioningError,
    ReproError,
    SimulationError,
    SolverError,
    SynthesisError,
)
from repro.fission import SequencerPlan, SequencingStrategy
from repro.hls import TaskEstimator, minimal_allocation, xc4000_library
from repro.ilp import Model, SolveStatus, solve, solve_lp
from repro.simulate import SimulationEvent, EventKind
from repro.units import ns


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            PartitioningError,
            FissionError,
            MemoryMappingError,
            SynthesisError,
            SimulationError,
            SolverError,
            IlpError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_solver_error_is_ilp_error(self):
        assert issubclass(SolverError, IlpError)

    def test_every_exported_name_is_an_exception(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and name.endswith("Error"):
                assert issubclass(obj, Exception)

    def test_catching_base_class_catches_subsystem_errors(self):
        with pytest.raises(ReproError):
            raise PartitioningError("boom")


class TestIlpEdgeCases:
    def test_unbounded_lp_detected_by_simplex(self):
        model = Model()
        x = model.add_continuous("x", 0, float("inf"))
        model.maximize(x)
        form = model.to_matrix_form()
        assert solve_lp(form).status is SolveStatus.UNBOUNDED

    def test_unbounded_milp_detected(self):
        model = Model()
        x = model.add_integer("x", 0, float("inf"))
        model.maximize(x)
        result = solve(model, backend="branch-and-bound")
        assert result.status is SolveStatus.UNBOUNDED

    def test_model_with_no_constraints(self):
        model = Model()
        x = model.add_binary("x")
        model.minimize(x)
        assert solve(model).objective == pytest.approx(0.0)

    def test_objective_with_constant_term(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 1)
        model.minimize(x + 10)
        for backend in ("scipy", "branch-and-bound"):
            assert solve(model, backend=backend).objective == pytest.approx(11.0)

    def test_maximization_with_constant(self):
        model = Model()
        x = model.add_binary("x")
        model.maximize(2 * x + 5)
        assert solve(model).objective == pytest.approx(7.0)


class TestEstimatorInternals:
    def test_area_breakdown_components_sum(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        estimate = estimator.estimate_dfg(vector_product_dfg(4, 8, 9), env_io_words=5)
        breakdown = estimate.breakdown
        assert breakdown.raw_total == (
            breakdown.functional_units
            + breakdown.registers
            + breakdown.steering
            + breakdown.controller
            + breakdown.memory_ports
        )
        # Layout inflation only ever adds area.
        assert estimate.clbs >= breakdown.raw_total

    def test_no_memory_port_without_io(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        estimate = estimator.estimate_dfg(vector_product_dfg(4, 8, 9), env_io_words=0)
        assert estimate.breakdown.memory_ports == 0

    def test_explicit_allocation_is_respected(self):
        library = xc4000_library()
        dfg = vector_product_dfg(4, 8, 9)
        allocation = minimal_allocation(dfg, library)
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        estimate = estimator.estimate_dfg(dfg, allocation=allocation)
        assert estimate.allocation.instances == allocation.instances

    def test_task_cost_conversion(self):
        estimator = TaskEstimator(xc4044(), max_clock_period=ns(100))
        estimate = estimator.estimate_dfg(vector_product_dfg(4, 8, 9))
        cost = estimate.to_task_cost()
        assert cost.clbs == estimate.clbs
        assert cost.delay == pytest.approx(estimate.delay)
        assert cost.cycles == estimate.cycles


class TestSequencerValidation:
    def test_plan_rejects_bad_parameters(self):
        with pytest.raises(FissionError):
            SequencerPlan(SequencingStrategy.FDH, partition_count=0, computations_per_run=1)
        with pytest.raises(FissionError):
            SequencerPlan(SequencingStrategy.IDH, partition_count=1, computations_per_run=0)

    def test_host_code_contains_partition_count(self):
        from repro.fission import generate_host_code

        code = generate_host_code(SequencerPlan(SequencingStrategy.FDH, 5, 16))
        assert "5 - 1" in code


class TestSimulationEvents:
    def test_event_end_time(self):
        event = SimulationEvent(kind=EventKind.EXECUTE, start_time=1.0, duration=0.5)
        assert event.end_time == pytest.approx(1.5)

    def test_event_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            SimulationEvent(kind=EventKind.EXECUTE, start_time=0.0, duration=-1.0)

    def test_event_describe_mentions_partition_and_words(self):
        event = SimulationEvent(
            kind=EventKind.TRANSFER_IN, start_time=0.0, duration=0.001,
            partition=2, run=3, words=64,
        )
        text = event.describe()
        assert "P2" in text and "64 words" in text and "transfer_in" in text


class TestDesignFlowErrors:
    def test_rtr_design_configuration_count_mismatch(self, case_study_reference):
        from repro.synth import RtrDesign

        with pytest.raises(SynthesisError):
            RtrDesign(
                name="broken",
                system=case_study_reference.system,
                partitioning=case_study_reference.partitioning,
                memory_map=case_study_reference.memory_map,
                fission=case_study_reference.fission,
                timing_spec=case_study_reference.rtr_spec,
                configurations=[object()],  # 1 configuration for 3 partitions
            )

    def test_estimate_stage_disabled(self, paper_system):
        from repro.jpeg import build_dct_task_graph
        from repro.synth import DesignFlow, FlowOptions

        graph = build_dct_task_graph(attach_dfgs=True)
        for name in graph.task_names():
            graph.task(name).cost = None
        flow = DesignFlow(paper_system, FlowOptions(estimate_missing_costs=False))
        with pytest.raises(SynthesisError):
            flow.build(graph)


class TestReportingHelpers:
    def test_breakdown_table_empty(self):
        from repro.simulate import breakdown_table

        assert "no breakdowns" in breakdown_table({})

    def test_format_events_empty(self):
        from repro.simulate import format_events

        assert format_events([]) == ""

    def test_partition_describe_contains_method(self, case_study_reference):
        text = case_study_reference.partitioning.describe()
        assert "paper-reference" in text
