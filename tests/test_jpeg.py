"""Tests for the JPEG case-study package (repro.jpeg)."""

import numpy as np
import pytest

from repro.errors import CodecError, SpecificationError
from repro.jpeg import (
    DctTaskCosts,
    HuffmanCode,
    JpegCodesign,
    JpegLikeCodec,
    build_dct_task_graph,
    dct_accuracy,
    dct_matrix,
    default_table,
    dequantize,
    expected_paper_partitioning,
    forward_dct,
    forward_dct_by_vector_products,
    forward_dct_fixed_point,
    forward_dct_two_stage,
    inverse_dct,
    inverse_zigzag,
    quantize,
    rtr_partition_delays,
    run_length_decode,
    run_length_encode,
    scale_table,
    static_design_delay,
    synthetic_image,
    t1_task_name,
    t2_task_name,
    table_workloads,
    workload_from_blocks,
    zigzag,
    zigzag_order,
)
from repro.jpeg.codesign import HardwareExecutionTrace
from repro.units import ns


@pytest.fixture
def random_blocks():
    rng = np.random.default_rng(42)
    return rng.uniform(-128, 127, size=(8, 4, 4))


class TestDct:
    def test_dct_matrix_is_orthonormal(self):
        for size in (4, 8):
            c = dct_matrix(size)
            assert np.allclose(c @ c.T, np.eye(size), atol=1e-12)

    def test_forward_inverse_roundtrip(self, random_blocks):
        for block in random_blocks:
            assert np.allclose(inverse_dct(forward_dct(block)), block, atol=1e-9)

    def test_two_stage_equals_direct(self, random_blocks):
        for block in random_blocks:
            _, result = forward_dct_two_stage(block)
            assert np.allclose(result, forward_dct(block), atol=1e-9)

    def test_vector_product_formulation_equals_matrix(self, random_blocks):
        for block in random_blocks:
            assert np.allclose(
                forward_dct_by_vector_products(block), forward_dct(block), atol=1e-9
            )

    def test_dc_coefficient_of_flat_block(self):
        flat = np.full((4, 4), 10.0)
        coefficients = forward_dct(flat)
        assert coefficients[0, 0] == pytest.approx(40.0)  # 10 * size
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-10)

    def test_8x8_supported(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(-128, 127, size=(8, 8))
        assert np.allclose(inverse_dct(forward_dct(block, 8), 8), block, atol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CodecError):
            forward_dct(np.zeros((3, 4)))

    def test_fixed_point_accuracy(self, random_blocks):
        for block in random_blocks:
            error = dct_accuracy(np.round(block))
            assert error < 4.0  # a couple of LSBs on values up to ~508

    def test_fixed_point_rejects_out_of_range(self):
        with pytest.raises(CodecError):
            forward_dct_fixed_point(np.full((4, 4), 300))


class TestQuantizeZigzagHuffman:
    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(1)
        coefficients = rng.uniform(-100, 100, size=(4, 4))
        table = default_table(4)
        reconstructed = dequantize(quantize(coefficients, table), table)
        assert np.all(np.abs(reconstructed - coefficients) <= table / 2 + 1e-9)

    def test_scale_table_quality_extremes(self):
        table = default_table(8)
        coarse = scale_table(table, 10)
        fine = scale_table(table, 95)
        assert np.all(coarse >= fine)
        assert np.all(fine >= 1)

    def test_scale_table_rejects_bad_quality(self):
        with pytest.raises(CodecError):
            scale_table(default_table(4), 0)

    def test_zigzag_order_properties(self):
        for size in (2, 4, 8):
            order = zigzag_order(size)
            assert len(order) == size * size
            assert len(set(order)) == size * size
            assert order[0] == (0, 0)
            assert order[1] == (0, 1)

    def test_zigzag_roundtrip(self):
        rng = np.random.default_rng(2)
        block = rng.integers(-50, 50, size=(4, 4))
        assert np.array_equal(inverse_zigzag(zigzag(block), 4), block)

    def test_run_length_roundtrip(self):
        sequence = np.array([5, 0, 0, -3, 0, 0, 0, 1] + [0] * 8)
        pairs = run_length_encode(sequence)
        assert pairs[-1] == (0, 0)
        assert np.array_equal(run_length_decode(pairs, 16), sequence)

    def test_run_length_all_zero(self):
        pairs = run_length_encode(np.zeros(16))
        assert pairs == [(0, 0)]
        assert np.array_equal(run_length_decode(pairs, 16), np.zeros(16))

    def test_huffman_roundtrip(self):
        symbols = [(0, 5), (0, 5), (1, -3), (0, 0), (0, 5), (2, 7), (0, 0)]
        code = HuffmanCode.from_symbols(symbols)
        assert code.decode(code.encode(symbols)) == symbols

    def test_huffman_is_prefix_free(self):
        code = HuffmanCode.from_frequencies({s: f for s, f in zip("abcdefg", [50, 20, 10, 8, 6, 4, 2])})
        assert code.is_prefix_free()

    def test_huffman_frequent_symbols_get_short_codes(self):
        code = HuffmanCode.from_frequencies({"common": 1000, "rare": 1})
        assert code.length_of("common") <= code.length_of("rare")

    def test_huffman_single_symbol(self):
        code = HuffmanCode.from_symbols(["only", "only"])
        assert code.decode(code.encode(["only", "only"])) == ["only", "only"]

    def test_huffman_rejects_unknown_symbol(self):
        code = HuffmanCode.from_symbols(["a", "b"])
        with pytest.raises(CodecError):
            code.encode(["c"])

    def test_huffman_rejects_truncated_stream(self):
        code = HuffmanCode.from_frequencies({"a": 3, "b": 2, "c": 1})
        bits = code.encode(["a", "b", "c"])
        with pytest.raises(CodecError):
            code.decode(bits[:-1])


class TestCodec:
    def test_roundtrip_psnr_reasonable(self):
        image = synthetic_image(64, 64, seed=3)
        codec = JpegLikeCodec(block_size=4, quality=75)
        assert codec.roundtrip_psnr(image) > 28.0

    def test_higher_quality_gives_higher_psnr(self):
        image = synthetic_image(64, 64, seed=4)
        low = JpegLikeCodec(4, quality=30).roundtrip_psnr(image)
        high = JpegLikeCodec(4, quality=90).roundtrip_psnr(image)
        assert high > low

    def test_compression_ratio_above_one_on_smooth_image(self):
        image = synthetic_image(64, 64, seed=5, pattern="gradient+noise")
        encoded = JpegLikeCodec(4, quality=60).encode(image)
        assert encoded.compression_ratio > 1.5

    def test_flat_image_compresses_extremely_well(self):
        image = synthetic_image(32, 32, pattern="flat")
        encoded = JpegLikeCodec(4, quality=75).encode(image)
        assert encoded.compression_ratio > 10

    def test_block_split_merge_roundtrip(self):
        codec = JpegLikeCodec(4)
        image = synthetic_image(30, 26, seed=6)  # not a multiple of 4
        blocks, ph, pw = codec.split_blocks(image)
        merged = codec.merge_blocks(blocks, ph, pw, 26, 30)
        assert np.allclose(merged, image)

    def test_non_multiple_dimensions_roundtrip(self):
        image = synthetic_image(33, 29, seed=7)
        codec = JpegLikeCodec(4, quality=85)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape

    def test_8x8_blocks_supported(self):
        image = synthetic_image(64, 64, seed=8)
        codec = JpegLikeCodec(block_size=8, quality=75)
        assert codec.roundtrip_psnr(image) > 28.0

    def test_psnr_identical_images_is_infinite(self):
        image = synthetic_image(16, 16)
        assert JpegLikeCodec.psnr(image, image) == float("inf")

    def test_encoded_block_count(self):
        image = synthetic_image(64, 32, seed=9)
        encoded = JpegLikeCodec(4).encode(image)
        assert encoded.block_count == (64 // 4) * (32 // 4)

    def test_rejects_non_2d_image(self):
        with pytest.raises(CodecError):
            JpegLikeCodec(4).encode(np.zeros((4, 4, 3)))


class TestDctTaskGraph:
    def test_structure_matches_figure8(self, dct_graph):
        assert len(dct_graph) == 32
        t1 = [t for t in dct_graph.tasks() if t.task_type == "T1"]
        t2 = [t for t in dct_graph.tasks() if t.task_type == "T2"]
        assert len(t1) == 16 and len(t2) == 16
        assert dct_graph.edge_count() == 64
        # Every T2 task depends on the four T1 tasks of its row.
        for row in range(4):
            for column in range(4):
                preds = dct_graph.predecessors(t2_task_name(row, column))
                assert sorted(preds) == sorted(t1_task_name(row, k) for k in range(4))

    def test_paper_costs(self, dct_graph):
        assert dct_graph.task(t1_task_name(0, 0)).clbs == 70
        assert dct_graph.task(t2_task_name(0, 0)).clbs == 180
        assert dct_graph.task(t1_task_name(0, 0)).delay == pytest.approx(ns(3400))
        assert dct_graph.task(t2_task_name(0, 0)).delay == pytest.approx(ns(2520))

    def test_data_volumes(self, dct_graph):
        assert dct_graph.total_env_input_words() == 16
        assert dct_graph.total_env_output_words() == 16
        # Each T1 output is stored exactly once even with fan-out 4.
        stage_words = sum(
            dct_graph.edge_words(p, c) for p, c in dct_graph.edges()
        )
        assert stage_words == 16

    def test_total_resources_exceed_device(self, dct_graph):
        # 16*70 + 16*180 = 4000 CLBs: the reason temporal partitioning is needed.
        assert dct_graph.total_resources()["clb"] == 4000

    def test_expected_paper_partitioning_is_valid(self, dct_graph, paper_system):
        from repro.partition import PartitionProblem, TemporalPartitioning, assert_valid

        assignment = expected_paper_partitioning(dct_graph)
        result = TemporalPartitioning(
            graph=dct_graph,
            assignment=assignment,
            partition_count=3,
            reconfiguration_time=paper_system.reconfiguration_time,
        )
        assert_valid(PartitionProblem.from_system(dct_graph, paper_system), result)
        assert result.computation_latency == pytest.approx(ns(8440))

    def test_static_and_rtr_latency_constants(self):
        assert static_design_delay() == pytest.approx(ns(16000))
        assert sum(rtr_partition_delays()) == pytest.approx(ns(8440))
        assert static_design_delay() - sum(rtr_partition_delays()) == pytest.approx(ns(7560))

    def test_estimator_costs_variant(self):
        from repro.arch import xc4044

        costs = DctTaskCosts.from_estimator(xc4044())
        graph = build_dct_task_graph(costs=costs)
        assert graph.task(t1_task_name(0, 0)).clbs > 0
        assert graph.task(t2_task_name(0, 0)).clbs > graph.task(t1_task_name(0, 0)).clbs

    def test_attach_dfgs(self):
        graph = build_dct_task_graph(attach_dfgs=True)
        assert graph.task(t1_task_name(1, 2)).dfg is not None


class TestWorkloads:
    def test_table_workloads_decreasing_and_exact(self):
        workloads = table_workloads()
        blocks = [w.block_count for w in workloads]
        assert blocks[0] == 245760
        assert blocks == sorted(blocks, reverse=True)

    def test_workload_from_blocks_exact(self):
        for count in (245760, 122880, 1024, 997):  # 997 is prime
            assert workload_from_blocks("w", count).block_count == count

    def test_workload_rejects_zero(self):
        with pytest.raises(SpecificationError):
            workload_from_blocks("w", 0)

    def test_synthetic_image_range_and_shape(self):
        image = synthetic_image(40, 20, seed=1)
        assert image.shape == (20, 40)
        assert image.min() >= 0.0 and image.max() <= 255.0

    def test_synthetic_image_patterns(self):
        flat = synthetic_image(16, 16, pattern="flat")
        noise = synthetic_image(16, 16, pattern="noise")
        assert flat.std() == 0.0
        assert noise.std() > 10.0
        with pytest.raises(SpecificationError):
            synthetic_image(16, 16, pattern="fractal")


class TestCodesign:
    def test_hardware_model_matches_numpy(self, random_blocks):
        codesign = JpegCodesign()
        assert codesign.max_error_against_reference(random_blocks) < 1e-9

    def test_hardware_model_with_ilp_partitioning(self, case_study_ilp, random_blocks):
        codesign = JpegCodesign(case_study_ilp.partitioning)
        assert codesign.max_error_against_reference(random_blocks) < 1e-9

    def test_execution_trace_word_counts(self):
        codesign = JpegCodesign()
        trace = HardwareExecutionTrace()
        codesign.execute_block(np.ones((4, 4)), trace)
        # 32 tasks, each reading 4 words and writing 1.
        assert trace.total_reads() == 128
        assert trace.total_writes() == 32

    def test_invalid_partitioning_detected(self, dct_graph):
        """A partitioning that breaks the data flow (T2 before its T1 row) is
        rejected by the functional model."""
        from repro.partition import TemporalPartitioning

        assignment = expected_paper_partitioning(dct_graph)
        # Move one T1 task after its consumers.
        assignment[t1_task_name(0, 0)] = 3
        assignment[t2_task_name(0, 0)] = 2
        bad = TemporalPartitioning(
            graph=dct_graph,
            assignment=assignment,
            partition_count=3,
            reconfiguration_time=0.0,
        )
        codesign = JpegCodesign(bad)
        with pytest.raises(CodecError):
            codesign.execute_block(np.ones((4, 4)))

    def test_software_time_positive(self):
        assert JpegCodesign.software_time_per_block(50e6) > 0
        with pytest.raises(CodecError):
            JpegCodesign.software_time_per_block(0)
