"""Tests for the design-space exploration subsystem (repro.explore)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExplorationError
from repro.explore import (
    OBJECTIVES,
    DesignPoint,
    ExploreConfig,
    Explorer,
    ParetoFront,
    PointRecord,
    RunStore,
    Scalariser,
    SearchSpace,
    default_store_path,
    dominates,
    make_strategy,
    objective_vector,
    resolve_objectives,
    strategy_names,
)
from repro.explore.space import WORKLOAD_DEFAULT_SYSTEM
from repro.units import ms

#: A cheap space: heuristic partitioners only, one small workload.
CHEAP_SPACE = SearchSpace.for_workloads(
    ["matmul_pipeline"],
    ct_values=(ms(1), ms(5), ms(20)),
    partitioners=("list", "level"),
    sequencings=("fdh", "idh"),
)

TWO_OBJECTIVES = resolve_objectives(("latency", "throughput"))


def cheap_config(**overrides) -> ExploreConfig:
    defaults = dict(strategy="grid", budget=CHEAP_SPACE.size, batch_size=4)
    defaults.update(overrides)
    return ExploreConfig(**defaults)


# ---------------------------------------------------------------------------
# SearchSpace / DesignPoint
# ---------------------------------------------------------------------------

class TestSearchSpace:
    def test_size_and_enumeration(self):
        points = list(CHEAP_SPACE.enumerate())
        assert len(points) == CHEAP_SPACE.size == 1 * 1 * 3 * 2 * 2
        assert len({point.fingerprint() for point in points}) == len(points)

    def test_index_roundtrip(self):
        for index, point in enumerate(CHEAP_SPACE.enumerate()):
            assert CHEAP_SPACE.index_of(point) == index
            assert CHEAP_SPACE.point_at(index) == point

    def test_point_fingerprint_is_order_independent(self):
        a = DesignPoint.create("w", params={"a": 1, "b": 2.5})
        b = DesignPoint.create("w", params={"b": 2.5, "a": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_point_json_roundtrip(self):
        point = CHEAP_SPACE.point_at(5)
        clone = DesignPoint.from_json_dict(point.to_json_dict())
        assert clone == point
        assert clone.fingerprint() == point.fingerprint()

    def test_out_of_range_index_raises(self):
        with pytest.raises(ExplorationError):
            CHEAP_SPACE.point_at(CHEAP_SPACE.size)

    def test_foreign_point_raises(self):
        foreign = DesignPoint.create("matmul_pipeline", ct=ms(999))
        with pytest.raises(ExplorationError):
            CHEAP_SPACE.index_of(foreign)

    def test_empty_axis_rejected(self):
        with pytest.raises(ExplorationError):
            SearchSpace(workloads=(("w", ()),), partitioners=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ExplorationError):
            SearchSpace(workloads=(("w", ()),), partitioners=("ilp", "ilp"))

    def test_unknown_sequencing_rejected_up_front(self):
        # Sequencing is consumed only deep inside objective evaluation; a
        # bad value must fail at space construction, not after flow work.
        with pytest.raises(ExplorationError, match="sequencing"):
            SearchSpace(workloads=(("w", ()),), sequencings=("idh", "nope"))

    def test_sampling_is_seed_deterministic(self):
        draw = lambda: [  # noqa: E731
            CHEAP_SPACE.random_point(random.Random(42)) for _ in range(5)
        ]
        assert draw() == draw()

    def test_neighbours_differ_in_one_axis(self):
        rng = random.Random(0)
        point = CHEAP_SPACE.point_at(0)
        for neighbour in CHEAP_SPACE.neighbours(point, rng, count=6):
            assert neighbour != point
            coordinates = CHEAP_SPACE.coordinates_of(point)
            other = CHEAP_SPACE.coordinates_of(neighbour)
            assert sum(1 for a, b in zip(coordinates, other) if a != b) == 1

    def test_singleton_space_has_no_neighbours(self):
        space = SearchSpace(workloads=(("w", ()),))
        point = space.point_at(0)
        assert space.neighbours(point, random.Random(0), count=3) == []

    def test_space_fingerprint_stable(self):
        clone = SearchSpace.for_workloads(
            ["matmul_pipeline"],
            ct_values=(ms(1), ms(5), ms(20)),
            partitioners=("list", "level"),
            sequencings=("fdh", "idh"),
        )
        assert clone.fingerprint() == CHEAP_SPACE.fingerprint()


# ---------------------------------------------------------------------------
# Dominance laws (property tests) and the Pareto front
# ---------------------------------------------------------------------------

vectors = st.tuples(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestDominance:
    @given(vectors)
    def test_irreflexive(self, a):
        assert not dominates(a, a, TWO_OBJECTIVES)

    @given(vectors, vectors)
    def test_antisymmetric(self, a, b):
        if dominates(a, b, TWO_OBJECTIVES):
            assert not dominates(b, a, TWO_OBJECTIVES)

    @settings(max_examples=200)
    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if dominates(a, b, TWO_OBJECTIVES) and dominates(b, c, TWO_OBJECTIVES):
            assert dominates(a, c, TWO_OBJECTIVES)

    def test_directions_respected(self):
        # latency minimises, throughput maximises.
        assert dominates((1.0, 10.0), (2.0, 5.0), TWO_OBJECTIVES)
        assert not dominates((2.0, 5.0), (1.0, 10.0), TWO_OBJECTIVES)
        assert not dominates((1.0, 5.0), (2.0, 10.0), TWO_OBJECTIVES)

    def test_length_mismatch_raises(self):
        with pytest.raises(ExplorationError):
            dominates((1.0,), (1.0, 2.0), TWO_OBJECTIVES)


def _record(name: str, latency: float, throughput: float) -> PointRecord:
    point = DesignPoint.create("w", params={"name": name})
    return PointRecord(
        fingerprint=point.fingerprint(),
        point=point,
        metrics={"latency": latency, "throughput": throughput},
    )


class TestParetoFront:
    def test_incremental_matches_brute_force(self):
        rng = random.Random(7)
        records = [
            _record(str(index), rng.uniform(0, 10), rng.uniform(0, 10))
            for index in range(60)
        ]
        front = ParetoFront(TWO_OBJECTIVES)
        for record in records:
            front.add(record.point, record.metrics, record.fingerprint)
        surviving = {entry.fingerprint for entry in front.entries()}
        expected = set()
        for record in records:
            vector = objective_vector(record.metrics, TWO_OBJECTIVES)
            others = (
                objective_vector(other.metrics, TWO_OBJECTIVES)
                for other in records
                if other is not record
            )
            if not any(dominates(o, vector, TWO_OBJECTIVES) for o in others):
                expected.add(record.fingerprint)
        assert surviving == expected

    def test_dominated_insertion_rejected(self):
        front = ParetoFront(TWO_OBJECTIVES)
        assert front.add(*_split(_record("good", 1.0, 10.0)))
        assert not front.add(*_split(_record("bad", 2.0, 5.0)))
        assert len(front) == 1

    def test_insertion_evicts_dominated(self):
        front = ParetoFront(TWO_OBJECTIVES)
        front.add(*_split(_record("old", 2.0, 5.0)))
        assert front.add(*_split(_record("better", 1.0, 10.0)))
        assert len(front) == 1
        assert front.entries()[0].metrics["latency"] == 1.0

    def test_objective_ties_coexist(self):
        front = ParetoFront(TWO_OBJECTIVES)
        front.add(*_split(_record("a", 1.0, 10.0)))
        front.add(*_split(_record("b", 1.0, 10.0)))
        assert len(front) == 2

    def test_entries_sorted_by_fingerprint(self):
        front = ParetoFront(TWO_OBJECTIVES)
        front.add(*_split(_record("b", 1.0, 10.0)))
        front.add(*_split(_record("a", 1.0, 10.0)))
        fingerprints = [entry.fingerprint for entry in front.entries()]
        assert fingerprints == sorted(fingerprints)


def _split(record: PointRecord):
    return record.point, record.metrics, record.fingerprint


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------

class TestObjectives:
    def test_registry_contents(self):
        assert set(OBJECTIVES) == {"latency", "area", "overhead", "throughput"}

    def test_resolve_unknown_raises(self):
        with pytest.raises(ExplorationError):
            resolve_objectives(("latency", "nope"))

    def test_resolve_duplicate_raises(self):
        with pytest.raises(ExplorationError):
            resolve_objectives(("latency", "latency"))

    def test_objective_values_are_sane(self):
        result = Explorer(CHEAP_SPACE, config=cheap_config(
            objectives=("latency", "area", "overhead", "throughput")
        )).run()
        assert result.ok
        for record in result.records:
            assert record.metrics["latency"] > 0
            assert 0 < record.metrics["area"] <= 1
            assert 0 <= record.metrics["overhead"] < 1
            assert record.metrics["throughput"] > 0


# ---------------------------------------------------------------------------
# Run store
# ---------------------------------------------------------------------------

class TestRunStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = _record("x", 1.0, 2.0)
        with RunStore(path, "space-fp") as store:
            store.record(record)
        with RunStore(path, "space-fp") as reloaded:
            assert len(reloaded) == 1
            loaded = reloaded.get(record.fingerprint)
            assert loaded is not None
            assert loaded.metrics == record.metrics
            assert loaded.point == record.point
            assert loaded.source == "store"

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = _record("x", 1.0, 2.0)
        with RunStore(path, "fp") as store:
            store.record(record)
            store.record(record)
        assert len(path.read_text().splitlines()) == 2  # meta + one record

    def test_truncated_trailing_line_is_healed(self, tmp_path):
        """A partial trailing line is truncated away, and appends after the
        resume land on a clean line boundary (no gluing onto the stub)."""
        path = tmp_path / "run.jsonl"
        with RunStore(path, "fp") as store:
            store.record(_record("x", 1.0, 2.0))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "interrupted')  # no newline, no close
        with RunStore(path, "fp") as reloaded:
            assert len(reloaded) == 1
            reloaded.record(_record("y", 3.0, 4.0))
        # The store fully self-heals: a fresh open sees both intact records.
        with RunStore(path, "fp") as healed:
            assert len(healed) == 2
            assert healed.get(_record("y", 3.0, 4.0).fingerprint) is not None

    def test_context_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunStore(path, "fp", context={"eval_blocks": 16384}):
            pass
        with pytest.raises(ExplorationError, match="stale metrics"):
            RunStore(path, "fp", context={"eval_blocks": 1024})
        # Same context (or none declared) resumes fine.
        with RunStore(path, "fp", context={"eval_blocks": 16384}):
            pass
        with RunStore(path, "fp"):
            pass

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "meta", "version": 999, "space": ""}\n')
        with pytest.raises(ExplorationError):
            RunStore(path, "fp")

    def test_fresh_run_truncates_without_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunStore(path, "fp") as store:
            store.record(_record("x", 1.0, 2.0))
        with RunStore(path, "fp", resume=False) as fresh:
            assert len(fresh) == 0

    def test_memory_store_needs_no_path(self):
        store = RunStore()
        store.record(_record("x", 1.0, 2.0))
        assert len(store) == 1

    def test_default_store_path_is_stable(self, tmp_path):
        a = default_store_path(CHEAP_SPACE, tmp_path)
        b = default_store_path(CHEAP_SPACE, tmp_path)
        assert a == b


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

class TestStrategies:
    def test_registry(self):
        assert strategy_names() == ["anneal", "greedy", "grid", "random"]
        with pytest.raises(ExplorationError):
            make_strategy("nope", CHEAP_SPACE, TWO_OBJECTIVES, random.Random(0))

    def test_grid_covers_the_space_exactly_once(self):
        result = Explorer(CHEAP_SPACE, config=cheap_config()).run()
        assert result.visited == CHEAP_SPACE.size
        assert result.flow_evaluated == CHEAP_SPACE.size
        assert {record.fingerprint for record in result.records} == {
            point.fingerprint() for point in CHEAP_SPACE.enumerate()
        }

    def test_random_stops_when_space_is_exhausted(self):
        result = Explorer(
            CHEAP_SPACE,
            config=cheap_config(strategy="random", budget=CHEAP_SPACE.size + 20),
        ).run()
        assert result.visited == CHEAP_SPACE.size
        assert len({record.fingerprint for record in result.records}) == CHEAP_SPACE.size

    @pytest.mark.parametrize("strategy", ["greedy", "anneal"])
    def test_local_search_respects_budget(self, strategy):
        result = Explorer(
            CHEAP_SPACE, config=cheap_config(strategy=strategy, budget=10, seed=5)
        ).run()
        assert result.visited == 10
        assert len(result.front) >= 1

    def test_scalariser_failed_record_scores_infinite(self):
        scalariser = Scalariser(TWO_OBJECTIVES)
        failed = PointRecord(
            fingerprint="f", point=DesignPoint.create("w"), status="failed"
        )
        assert scalariser.score(failed) == float("inf")


# ---------------------------------------------------------------------------
# End-to-end determinism and resume
# ---------------------------------------------------------------------------

class TestDeterminismAndResume:
    @pytest.mark.parametrize("strategy", ["grid", "random", "greedy", "anneal"])
    def test_same_seed_same_budget_byte_identical(self, strategy, tmp_path):
        """Same seed + budget => byte-identical store and identical front."""
        outputs = []
        for run in ("a", "b"):
            path = tmp_path / f"{run}.jsonl"
            with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
                result = Explorer(
                    CHEAP_SPACE,
                    config=cheap_config(strategy=strategy, budget=12, seed=9),
                    store=store,
                ).run()
            outputs.append((path.read_bytes(), result.front.to_json_dict()))
        assert outputs[0][0] == outputs[1][0]
        assert outputs[0][1] == outputs[1][1]

    def test_resumed_run_evaluates_zero_flow_jobs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = cheap_config(strategy="anneal", budget=15, seed=3)
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            first = Explorer(CHEAP_SPACE, config=config, store=store).run()
        assert first.flow_evaluated > 0
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            resumed = Explorer(CHEAP_SPACE, config=config, store=store).run()
        assert resumed.flow_evaluated == 0
        assert resumed.store_hits == resumed.visited == first.visited
        assert resumed.front.to_json_dict() == first.front.to_json_dict()

    def test_partial_store_resumes_mid_trajectory(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = cheap_config(strategy="grid", budget=CHEAP_SPACE.size)
        half = cheap_config(strategy="grid", budget=CHEAP_SPACE.size // 2)
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            Explorer(CHEAP_SPACE, config=half, store=store).run()
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            full = Explorer(CHEAP_SPACE, config=config, store=store).run()
        assert full.store_hits == CHEAP_SPACE.size // 2
        assert full.flow_evaluated == CHEAP_SPACE.size - CHEAP_SPACE.size // 2


# ---------------------------------------------------------------------------
# The exploration engine
# ---------------------------------------------------------------------------

class TestExplorer:
    def test_front_is_non_empty_and_mutually_non_dominated(self):
        result = Explorer(CHEAP_SPACE, config=cheap_config()).run()
        entries = result.front.entries()
        assert entries
        for a in entries:
            for b in entries:
                assert not dominates(
                    a.vector(result.front.objectives),
                    b.vector(result.front.objectives),
                    result.front.objectives,
                )

    def test_failed_points_are_recorded_not_fatal(self):
        # An unknown system preset is a deterministic, per-point
        # construction failure: recorded, never fatal to the batch.
        space = SearchSpace.for_workloads(
            ["matmul_pipeline"], systems=("no-such-system", WORKLOAD_DEFAULT_SYSTEM)
        )
        result = Explorer(
            space, config=ExploreConfig(strategy="grid", budget=space.size)
        ).run()
        assert result.visited == space.size
        assert result.failures == 1
        assert not result.ok
        failed = [record for record in result.records if not record.ok]
        assert failed[0].error_kind == "ArchitectureError"
        assert len(result.front) >= 1
        # The broken point never reached the flow engine.
        assert result.flow_evaluated == space.size - 1

    def test_transient_failures_are_not_persisted(self):
        from repro.explore import is_deterministic_failure

        deterministic = PointRecord(
            fingerprint="d", point=DesignPoint.create("w"),
            status="failed", error_kind="PartitioningError",
        )
        transient = PointRecord(
            fingerprint="t", point=DesignPoint.create("w"),
            status="failed", error_kind="TimeoutError",
        )
        assert is_deterministic_failure(deterministic)
        assert not is_deterministic_failure(transient)

    def test_deterministic_failures_are_persisted_and_resumed(self, tmp_path):
        space = SearchSpace.for_workloads(
            ["matmul_pipeline"], systems=("no-such-system", WORKLOAD_DEFAULT_SYSTEM)
        )
        path = tmp_path / "run.jsonl"
        config = ExploreConfig(strategy="grid", budget=space.size)
        with RunStore(path, space.fingerprint()) as store:
            Explorer(space, config=config, store=store).run()
        with RunStore(path, space.fingerprint()) as store:
            resumed = Explorer(space, config=config, store=store).run()
        # The ArchitectureError is deterministic: served from the store,
        # never retried.
        assert resumed.flow_evaluated == 0
        assert resumed.failures == 1

    def test_resume_under_a_different_objective_selection(self, tmp_path):
        """Records carry every registered objective, so a store recorded
        under one selection resumes cleanly under another."""
        path = tmp_path / "run.jsonl"
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            Explorer(
                CHEAP_SPACE, config=cheap_config(objectives=("latency",)),
                store=store,
            ).run()
        with RunStore(path, CHEAP_SPACE.fingerprint()) as store:
            result = Explorer(
                CHEAP_SPACE,
                config=cheap_config(objectives=("area", "overhead")),
                store=store,
            ).run()
        assert result.flow_evaluated == 0
        assert len(result.front) >= 1
        for entry in result.front.entries():
            assert {"latency", "area", "overhead", "throughput"} <= set(entry.metrics)

    def test_config_overrides_conflict_raises(self):
        with pytest.raises(ExplorationError):
            Explorer(CHEAP_SPACE, config=cheap_config(), budget=3)

    def test_result_rows_shape(self):
        result = Explorer(CHEAP_SPACE, config=cheap_config(budget=4)).run()
        rows = result.rows()
        assert len(rows) == 4
        assert set(rows[0]) == {
            "design", "status", "source", "latency", "throughput",
            "stage_cache_hits", "stage_sources", "error",
        }

    def test_default_system_resolves_per_workload(self):
        """The workload-default sentinel must resolve each workload's OWN
        board, however the resolution cache is warmed."""
        space = SearchSpace.for_workloads(["fir_filterbank", "matmul_pipeline"])
        explorer = Explorer(space, config=ExploreConfig(budget=1))
        from repro.workloads import get_workload

        for point in space.enumerate():
            resolved = explorer._system_for(point)
            expected = get_workload(point.workload).default_system()
            assert resolved.reconfiguration_time == expected.reconfiguration_time
            assert resolved.resource_capacity == expected.resource_capacity

    def test_workload_variants_expand_the_space(self):
        space = SearchSpace.for_workloads(["random_layered"], variants=True)
        from repro.workloads import get_workload

        assert len(space.workloads) == len(get_workload("random_layered").variants())


# ---------------------------------------------------------------------------
# The frontier experiment driver
# ---------------------------------------------------------------------------

class TestFrontier:
    def test_jpeg_dct_frontier_smoke(self):
        from repro.experiments.frontier import (
            format_frontier_table,
            jpeg_dct_frontier,
        )

        report = jpeg_dct_frontier(
            ct_values=(ms(10), ms(100)), partitioners=("list", "level")
        )
        assert report.result.ok
        assert len(report.result.front) >= 1
        # The paper's partitioner (ilp) is outside this reduced space, so
        # its point cannot be on the front; the comparison must still work.
        table = format_frontier_table(report)
        assert "Pareto front" in table
        assert report.describe()

    def test_paper_point_fingerprint_is_in_default_space(self):
        from repro.experiments.frontier import jpeg_dct_space, paper_design_point

        space = jpeg_dct_space()
        assert space.index_of(paper_design_point()) >= 0
