"""Tests for loop fission, sequencing strategies and throughput models."""

import pytest

from repro.arch import generic_system
from repro.errors import FissionError
from repro.fission import (
    RtrTimingSpec,
    SequencerCallbacks,
    SequencerPlan,
    SequencingStrategy,
    StaticTimingSpec,
    analyse_fission,
    breakeven_computations,
    compare_static_vs_rtr,
    count_configuration_loads,
    execution_time,
    fdh_execution_time,
    fdh_reconfiguration_overhead,
    generate_host_code,
    idh_execution_time,
    idh_overhead,
    reconfiguration_absorption_point,
    reconfiguration_time_sweep,
    rtr_timing_spec,
    run_sequencer,
    static_execution_time,
    static_timing_spec,
    sweep_workload_sizes,
)
from repro.units import ms, ns, us


@pytest.fixture(scope="module")
def dct_specs():
    """(static spec, rtr spec, system) for the paper's DCT design."""
    from repro.experiments import build_case_study

    study = build_case_study(use_ilp=False)
    return study.static_spec, study.rtr_spec, study.system


class TestFissionAnalysis:
    def test_dct_k_is_2048(self, case_study_ilp):
        assert case_study_ilp.fission.computations_per_run == 2048

    def test_dct_limiting_partition_is_first(self, case_study_ilp):
        assert case_study_ilp.fission.limiting_partition == 1
        assert case_study_ilp.fission.max_per_iteration_words == 32

    def test_software_loop_count(self, case_study_ilp):
        analysis = case_study_ilp.fission
        assert analysis.software_loop_count(245760) == 120
        assert analysis.software_loop_count(245761) == 121
        assert analysis.software_loop_count(0) == 0
        assert analysis.software_loop_count(1) == 1

    def test_computations_in_run_last_partial(self, case_study_ilp):
        analysis = case_study_ilp.fission
        total = 5000  # 2 full runs of 2048 + 904
        assert analysis.computations_in_run(0, total) == 2048
        assert analysis.computations_in_run(2, total) == 904
        with pytest.raises(FissionError):
            analysis.computations_in_run(3, total)

    def test_rounded_blocks_reduce_k(self, case_study_ilp):
        rounded = analyse_fission(
            case_study_ilp.partitioning, 65536, round_blocks_to_power_of_two=True
        )
        assert rounded.computations_per_run <= case_study_ilp.fission.computations_per_run

    def test_memory_too_small_raises(self, case_study_ilp):
        with pytest.raises(FissionError):
            analyse_fission(case_study_ilp.partitioning, 16)

    def test_nonpositive_memory_rejected(self, case_study_ilp):
        with pytest.raises(FissionError):
            analyse_fission(case_study_ilp.partitioning, 0)


class TestTimingSpecs:
    def test_dct_rtr_spec_words(self, case_study_ilp):
        spec = case_study_ilp.rtr_spec
        assert spec.partition_count == 3
        assert sum(spec.partition_env_input_words) == 16
        assert sum(spec.partition_env_output_words) == 16
        assert sum(spec.partition_cross_output_words) == 16
        assert spec.env_words_per_iteration == 32
        assert spec.max_block_words == 32
        assert spec.block_delay == pytest.approx(ns(8440))

    def test_static_spec(self, case_study_ilp):
        spec = case_study_ilp.static_spec
        assert spec.block_delay == pytest.approx(ns(16000))
        assert spec.env_input_words == 16

    def test_rtr_spec_validation(self):
        with pytest.raises(FissionError):
            RtrTimingSpec(
                partition_delays=[ns(100)],
                partition_env_input_words=[1, 2],  # wrong length
                partition_env_output_words=[1],
                partition_cross_input_words=[0],
                partition_cross_output_words=[0],
                computations_per_run=1,
            )

    def test_static_spec_validation(self):
        with pytest.raises(FissionError):
            StaticTimingSpec(block_delay=-1.0, env_input_words=1, env_output_words=1)


class TestOverheadFormulas:
    def test_fdh_overhead_formula(self):
        assert fdh_reconfiguration_overhead(3, ms(100), 120) == pytest.approx(36.0)

    def test_idh_overhead_formula(self):
        overhead = idh_overhead(3, ms(100), 2048, 120, 30e-9, 32)
        assert overhead == pytest.approx(0.3 + 2 * 2048 * 120 * 30e-9 * 32)

    def test_idh_overhead_much_smaller_than_fdh(self, dct_specs):
        _, rtr, system = dct_specs
        fdh = fdh_reconfiguration_overhead(3, system.reconfiguration_time, 120)
        idh = idh_overhead(
            3, system.reconfiguration_time, rtr.computations_per_run, 120,
            system.word_transfer_time, rtr.max_block_words,
        )
        assert idh < fdh / 10


class TestExecutionTimeModels:
    def test_static_scales_linearly(self, dct_specs):
        static, _, system = dct_specs
        one = static_execution_time(static, 1000, system)
        two = static_execution_time(static, 2000, system)
        # Subtracting the constant configuration term, time is linear in blocks.
        assert (two.total - two.reconfiguration) == pytest.approx(
            2 * (one.total - one.reconfiguration), rel=1e-9
        )

    def test_zero_workload(self, dct_specs):
        static, rtr, system = dct_specs
        assert static_execution_time(static, 0, system).total == pytest.approx(
            system.reconfiguration_time
        ) or static_execution_time(static, 0, system).total >= 0
        assert fdh_execution_time(rtr, 0, system).total == 0
        assert idh_execution_time(rtr, 0, system).total == 0

    def test_fdh_reconfiguration_grows_with_runs(self, dct_specs):
        _, rtr, system = dct_specs
        small = fdh_execution_time(rtr, 2048, system)
        large = fdh_execution_time(rtr, 4096, system)
        assert large.reconfiguration == pytest.approx(2 * small.reconfiguration)

    def test_idh_reconfiguration_constant(self, dct_specs):
        _, rtr, system = dct_specs
        small = idh_execution_time(rtr, 2048, system)
        large = idh_execution_time(rtr, 245760, system)
        assert small.reconfiguration == pytest.approx(large.reconfiguration)
        assert small.reconfiguration == pytest.approx(0.3)

    def test_idh_transfers_double_static(self, dct_specs):
        static, rtr, system = dct_specs
        blocks = 10000
        static_transfer = static_execution_time(static, blocks, system).data_transfer
        idh_transfer = idh_execution_time(rtr, blocks, system).data_transfer
        assert idh_transfer == pytest.approx(2 * static_transfer, rel=1e-9)

    def test_fdh_transfers_equal_static(self, dct_specs):
        static, rtr, system = dct_specs
        blocks = 10000
        assert fdh_execution_time(rtr, blocks, system).data_transfer == pytest.approx(
            static_execution_time(static, blocks, system).data_transfer, rel=1e-9
        )

    def test_execution_time_dispatch(self, dct_specs):
        _, rtr, system = dct_specs
        assert execution_time(SequencingStrategy.FDH, rtr, 100, system).total == pytest.approx(
            fdh_execution_time(rtr, 100, system).total
        )
        assert execution_time(SequencingStrategy.IDH, rtr, 100, system).total == pytest.approx(
            idh_execution_time(rtr, 100, system).total
        )

    def test_include_transfers_flag(self, dct_specs):
        _, rtr, system = dct_specs
        with_transfers = idh_execution_time(rtr, 1000, system, include_transfers=True)
        without = idh_execution_time(rtr, 1000, system, include_transfers=False)
        assert without.data_transfer == 0
        assert with_transfers.total > without.total

    def test_breakdown_as_dict(self, dct_specs):
        _, rtr, system = dct_specs
        breakdown = idh_execution_time(rtr, 1000, system)
        data = breakdown.as_dict()
        assert data["total"] == pytest.approx(breakdown.total)
        assert set(data) >= {"reconfiguration", "computation", "data_transfer", "handshake"}


class TestComparisonsAndSweeps:
    def test_paper_headline_idh_improvement(self, dct_specs):
        static, rtr, system = dct_specs
        comparison = compare_static_vs_rtr(SequencingStrategy.IDH, static, rtr, 245760, system)
        assert comparison.rtr_wins
        assert comparison.improvement == pytest.approx(0.42, abs=0.06)
        assert comparison.software_loop_count == 120

    def test_paper_headline_fdh_never_wins(self, dct_specs):
        static, rtr, system = dct_specs
        for blocks in (1024, 30720, 245760):
            comparison = compare_static_vs_rtr(SequencingStrategy.FDH, static, rtr, blocks, system)
            assert not comparison.rtr_wins
            assert comparison.improvement < 0

    def test_sweep_sizes_match_single_calls(self, dct_specs):
        static, rtr, system = dct_specs
        sizes = [1024, 2048, 245760]
        rows = sweep_workload_sizes(SequencingStrategy.IDH, static, rtr, sizes, system)
        assert [row.total_computations for row in rows] == sizes
        single = compare_static_vs_rtr(SequencingStrategy.IDH, static, rtr, 2048, system)
        assert rows[1].rtr.total == pytest.approx(single.rtr.total)

    def test_idh_improvement_monotone_in_workload(self, dct_specs):
        static, rtr, system = dct_specs
        sizes = [2048 * f for f in (1, 4, 16, 64, 120)]
        rows = sweep_workload_sizes(SequencingStrategy.IDH, static, rtr, sizes, system)
        improvements = [row.improvement for row in rows]
        assert improvements == sorted(improvements)

    def test_breakeven_idh_exists(self, dct_specs):
        static, rtr, system = dct_specs
        breakeven = breakeven_computations(SequencingStrategy.IDH, static, rtr, system)
        assert breakeven is not None
        # At the breakeven size the RTR design wins; one block earlier it does not.
        assert compare_static_vs_rtr(SequencingStrategy.IDH, static, rtr, breakeven, system).rtr_wins
        assert not compare_static_vs_rtr(
            SequencingStrategy.IDH, static, rtr, breakeven - 1, system
        ).rtr_wins

    def test_breakeven_fdh_none_on_paper_board(self, dct_specs):
        static, rtr, system = dct_specs
        assert breakeven_computations(
            SequencingStrategy.FDH, static, rtr, system, upper_bound=1 << 26
        ) is None

    def test_absorption_point_near_paper_value(self, dct_specs):
        _, rtr, system = dct_specs
        blocks = reconfiguration_absorption_point(rtr, system)
        # Paper quotes ~42,553; our per-block delay gives the same order (30-50k).
        assert 30000 < blocks < 50000

    def test_reconfiguration_sweep_monotone(self, dct_specs):
        static, rtr, system = dct_specs
        rows = reconfiguration_time_sweep(
            SequencingStrategy.IDH, static, rtr, 245760, system,
            reconfiguration_times=[ms(100), ms(10), us(500), ns(100)],
        )
        improvements = [row["improvement"] for row in rows]
        assert improvements == sorted(improvements)
        # Microsecond-class reconfiguration approaches the compute-only bound (~47%).
        assert improvements[-1] == pytest.approx(0.48, abs=0.05)

    def test_xc6000_conjecture_value(self, dct_specs):
        static, rtr, system = dct_specs
        rows = reconfiguration_time_sweep(
            SequencingStrategy.IDH, static, rtr, 245760, system, [us(500)]
        )
        assert rows[0]["improvement"] == pytest.approx(0.47, abs=0.05)


class TestSequencer:
    def _callbacks(self, log):
        return SequencerCallbacks(
            load_configuration=lambda p: log.append(("config", p)),
            load_input_block=lambda p, r: log.append(("in", p, r)),
            start_and_wait=lambda p, r, k: log.append(("run", p, r, k)),
            read_output_block=lambda p, r: log.append(("out", p, r)),
        )

    def test_fdh_configuration_count(self):
        plan = SequencerPlan(SequencingStrategy.FDH, partition_count=3, computations_per_run=2048)
        assert count_configuration_loads(plan, 245760) == 360

    def test_idh_configuration_count(self):
        plan = SequencerPlan(SequencingStrategy.IDH, partition_count=3, computations_per_run=2048)
        assert count_configuration_loads(plan, 245760) == 3

    def test_fdh_trace_order(self):
        plan = SequencerPlan(SequencingStrategy.FDH, partition_count=2, computations_per_run=10)
        log = []
        run_sequencer(plan, 25, self._callbacks(log))
        configs = [entry for entry in log if entry[0] == "config"]
        assert [c[1] for c in configs] == [0, 1, 0, 1, 0, 1]  # reconfigured every run
        runs = [entry for entry in log if entry[0] == "run"]
        assert runs[-1][3] == 5  # last partial batch

    def test_idh_trace_order(self):
        plan = SequencerPlan(SequencingStrategy.IDH, partition_count=2, computations_per_run=10)
        log = []
        run_sequencer(plan, 25, self._callbacks(log))
        configs = [entry for entry in log if entry[0] == "config"]
        assert [c[1] for c in configs] == [0, 1]  # each configuration loaded once
        # All runs of partition 0 happen before partition 1 is configured.
        first_p1_config = log.index(("config", 1))
        assert all(entry[1] == 0 for entry in log[:first_p1_config] if entry[0] == "run")

    def test_trace_matches_configuration_count(self):
        for strategy in SequencingStrategy:
            plan = SequencerPlan(strategy, partition_count=3, computations_per_run=7)
            log = []
            run_sequencer(plan, 20, self._callbacks(log))
            configs = sum(1 for entry in log if entry[0] == "config")
            assert configs == count_configuration_loads(plan, 20)

    def test_zero_computations_empty_trace(self):
        plan = SequencerPlan(SequencingStrategy.FDH, 2, 10)
        assert run_sequencer(plan, 0, self._callbacks([])) == []

    def test_host_code_generation_fdh(self):
        plan = SequencerPlan(SequencingStrategy.FDH, 3, 2048, design_name="dct")
        code = generate_host_code(plan)
        assert "for (j = 0; j <= I_sw - 1; j++)" in code
        assert "load_configuration(i);" in code
        assert "FDH" in code

    def test_host_code_generation_idh(self):
        plan = SequencerPlan(SequencingStrategy.IDH, 3, 2048)
        code = generate_host_code(plan)
        # IDH nests the data loop inside the configuration loop.
        assert code.index("load_configuration") < code.index("load_intermediate_input_block")
        assert "IDH" in code


class TestAnalyticVsSpecConstruction:
    def test_rtr_timing_spec_matches_memory_map(self, case_study_ilp):
        spec = rtr_timing_spec(case_study_ilp.partitioning, case_study_ilp.fission)
        assert spec.partition_env_input_words == case_study_ilp.rtr_spec.partition_env_input_words
        assert spec.partition_cross_output_words == case_study_ilp.rtr_spec.partition_cross_output_words

    def test_static_timing_spec_constructor(self):
        spec = static_timing_spec(ns(16000), 16, 16, blocks_per_invocation=4)
        assert spec.blocks_per_invocation == 4

    def test_generic_system_comparison_runs(self):
        # The models must work for arbitrary systems, not only the paper board.
        system = generic_system(clb_capacity=1000, memory_words=4096, reconfiguration_time=ms(5))
        static = static_timing_spec(us(20), 8, 8)
        rtr = RtrTimingSpec(
            partition_delays=[us(4), us(6)],
            partition_env_input_words=[8, 0],
            partition_env_output_words=[0, 8],
            partition_cross_input_words=[0, 4],
            partition_cross_output_words=[4, 0],
            computations_per_run=256,
        )
        comparison = compare_static_vs_rtr(SequencingStrategy.IDH, static, rtr, 100000, system)
        assert comparison.static.total > 0 and comparison.rtr.total > 0
